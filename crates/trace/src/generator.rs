//! Synthetic error-log generator.
//!
//! Ties the fleet model, the fault-process model and the monitoring-daemon model together
//! to produce an [`ErrorLog`] whose aggregate statistics approximate the published
//! MareNostrum 3 numbers: ~4.5 million corrected errors concentrated on a small set of
//! faulty DIMMs, a few hundred raw uncorrected errors that collapse to a few dozen
//! effective (first-of-burst) UEs, tens of thousands of node boots, firmware UE warnings,
//! a handful of critical over-temperature shutdowns and 51 administrative DIMM
//! retirements, over a two-year observation window.
//!
//! Generation is fully deterministic for a given seed, which is what makes the evaluation
//! experiments (and this repository's tests) reproducible.

use crate::events::{Detector, EventKind, LogEvent, WarningReason};
use crate::faults::{FaultRates, FaultSampler};
use crate::fleet::FleetConfig;
use crate::log::ErrorLog;
use crate::scrubber::{DaemonConfig, DaemonModel, RawCeBurst};
use crate::types::{DimmId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uerl_stats::{Bernoulli, Distribution, Exponential, Poisson, Uniform};

/// Configuration of the synthetic log generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticLogConfig {
    /// The monitored fleet.
    pub fleet: FleetConfig,
    /// Start of the observation window.
    pub window_start: SimTime,
    /// End of the observation window.
    pub window_end: SimTime,
    /// Fault-process parameters.
    pub rates: FaultRates,
    /// Monitoring daemon parameters.
    pub daemon: DaemonConfig,
    /// Mean number of node boots per node per year (scheduled maintenance, crashes, ...).
    pub reboots_per_node_year: f64,
    /// Mean number of corrected-error bursts per day for an active CE-producing fault.
    /// The per-burst error count is derived from the fault's CE rate so the total error
    /// count is independent of this knob; it only controls how clumped the errors are.
    pub ce_bursts_per_day: f64,
    /// Number of DIMMs retired preventively by the administrators during the window.
    pub retired_dimm_count: u32,
    /// Number of critical over-temperature shutdowns during the window (counted as UEs).
    pub overtemp_events: u32,
    /// Cumulative corrected errors on one DIMM per firmware "CE logging limit" warning.
    pub warning_ce_threshold: u64,
    /// RNG seed; the same seed always produces the same log.
    pub seed: u64,
}

impl SyntheticLogConfig {
    /// The full MareNostrum 3 preset: 3056 nodes, 8 DIMMs/node, two years.
    ///
    /// The daemon polling period is set to 1 s (instead of the production 100 ms) to bound
    /// the raw record count of dense error storms; the per-minute merged view consumed by
    /// the environment is unaffected, and the CE *counts* are preserved exactly.
    pub fn marenostrum3(seed: u64) -> Self {
        Self {
            fleet: FleetConfig::marenostrum3(),
            window_start: SimTime::ZERO,
            window_end: SimTime::from_days(730),
            rates: FaultRates::marenostrum3(),
            daemon: DaemonConfig {
                period_ms: 1000,
                p_patrol: 0.4,
            },
            reboots_per_node_year: 6.0,
            ce_bursts_per_day: 0.75,
            retired_dimm_count: 51,
            overtemp_events: 20,
            warning_ce_threshold: 50_000,
            seed,
        }
    }

    /// A small, dense preset for tests and examples: `nodes` nodes over `days` days with
    /// fault rates high enough that a handful of UEs always appear.
    pub fn small(nodes: u32, days: i64, seed: u64) -> Self {
        Self {
            fleet: FleetConfig::small(nodes),
            window_start: SimTime::ZERO,
            window_end: SimTime::from_days(days.max(7)),
            rates: FaultRates::dense_for_tests(),
            daemon: DaemonConfig {
                period_ms: 1000,
                p_patrol: 0.4,
            },
            reboots_per_node_year: 6.0,
            ce_bursts_per_day: 0.75,
            retired_dimm_count: 2,
            overtemp_events: 1,
            warning_ce_threshold: 10_000,
            seed,
        }
    }

    /// Length of the window in days.
    pub fn window_days(&self) -> f64 {
        (self.window_end - self.window_start) as f64 / SimTime::DAY as f64
    }
}

/// The synthetic log generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: SyntheticLogConfig,
}

impl TraceGenerator {
    /// Create a generator from a configuration.
    ///
    /// # Panics
    /// Panics if the observation window is empty.
    pub fn new(config: SyntheticLogConfig) -> Self {
        assert!(
            config.window_end > config.window_start,
            "observation window must be non-empty"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SyntheticLogConfig {
        &self.config
    }

    /// Generate the error log.
    pub fn generate(&self) -> ErrorLog {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let daemon = DaemonModel::new(cfg.daemon);
        let sampler = FaultSampler::new(cfg.rates, cfg.window_start, cfg.window_end);
        let mut events: Vec<LogEvent> = Vec::new();

        self.generate_boots(&mut rng, &mut events);
        self.generate_faults(&sampler, &daemon, &mut rng, &mut events);
        self.generate_retirements(&mut rng, &mut events);
        self.generate_overtemps(&mut rng, &mut events);

        ErrorLog::new(cfg.fleet.clone(), events, cfg.window_start, cfg.window_end)
    }

    /// Scheduled/maintenance node boots: a Poisson process per node, plus one boot at the
    /// start of the window so "time since last boot" is always defined.
    fn generate_boots(&self, rng: &mut StdRng, events: &mut Vec<LogEvent>) {
        let cfg = &self.config;
        let mean_gap_secs = SimTime::YEAR as f64 / cfg.reboots_per_node_year.max(0.1);
        let gap = Exponential::from_mean(mean_gap_secs);
        for node in cfg.fleet.nodes() {
            events.push(LogEvent::new(
                cfg.window_start,
                node.id,
                EventKind::NodeBoot,
            ));
            let mut t = cfg.window_start;
            loop {
                t = t.plus_secs(gap.sample(rng) as i64);
                if t >= cfg.window_end {
                    break;
                }
                events.push(LogEvent::new(t, node.id, EventKind::NodeBoot));
            }
        }
    }

    /// Corrected-error activity, UE warnings and uncorrected errors from the per-DIMM
    /// fault population.
    fn generate_faults(
        &self,
        sampler: &FaultSampler,
        daemon: &DaemonModel,
        rng: &mut StdRng,
        events: &mut Vec<LogEvent>,
    ) {
        let cfg = &self.config;
        let burst_gap =
            Exponential::from_mean(SimTime::DAY as f64 / cfg.ce_bursts_per_day.max(1e-6));
        for dimm in cfg.fleet.dimms() {
            let faults = sampler.sample_for_dimm(dimm.id, rng);
            if faults.is_empty() {
                continue;
            }
            let mut cumulative_ce: u64 = 0;
            let mut warnings_emitted: u64 = 0;
            for fault in &faults {
                // CE bursts while the fault is active.
                if fault.ce_rate_per_day > 0.0 {
                    let mean_burst_size =
                        (fault.ce_rate_per_day / cfg.ce_bursts_per_day.max(1e-6)).max(1.0);
                    let burst_size = Poisson::new(mean_burst_size);
                    let mut t = fault.onset;
                    loop {
                        t = t.plus_secs(burst_gap.sample(rng) as i64);
                        if t >= fault.end || t >= cfg.window_end {
                            break;
                        }
                        let count = burst_size.sample(rng) as u32;
                        if count == 0 {
                            continue;
                        }
                        let duration_secs = rng.gen_range(0..4);
                        let burst = RawCeBurst {
                            dimm: dimm.id,
                            start: t,
                            duration_secs,
                            count,
                            class: fault.class,
                            region: fault.region,
                        };
                        events.extend(daemon.record_burst(&burst, rng));
                        cumulative_ce += count as u64;
                        // Firmware warning each time the CE logging limit is crossed.
                        let due = cumulative_ce / cfg.warning_ce_threshold.max(1);
                        while warnings_emitted < due {
                            warnings_emitted += 1;
                            events.push(LogEvent::new(
                                t,
                                dimm.id.node,
                                EventKind::UeWarning {
                                    reason: WarningReason::CeLoggingLimit,
                                },
                            ));
                        }
                    }
                }

                // Escalation to uncorrected errors.
                if let Some(esc) = fault.escalation {
                    if esc.warns {
                        let lead = rng.gen_range(SimTime::HOUR..SimTime::DAY);
                        let warn_time = esc.first_ue.plus_secs(-lead).max(cfg.window_start);
                        events.push(LogEvent::new(
                            warn_time,
                            dimm.id.node,
                            EventKind::UeWarning {
                                reason: WarningReason::CeLoggingLimit,
                            },
                        ));
                    }
                    let detector_dist = Bernoulli::new(0.5);
                    for i in 0..esc.burst_len {
                        let t = if i == 0 {
                            esc.first_ue
                        } else {
                            esc.first_ue
                                .plus_secs(rng.gen_range(SimTime::HOUR..SimTime::WEEK))
                        };
                        if t >= cfg.window_end {
                            continue;
                        }
                        let detector = if detector_dist.sample(rng) {
                            Detector::PatrolScrub
                        } else {
                            Detector::DemandRead
                        };
                        events.push(LogEvent::new(
                            t,
                            dimm.id.node,
                            EventKind::UncorrectedError {
                                dimm: dimm.id,
                                detector,
                            },
                        ));
                    }
                    // After the first UE the node is pulled from production, tested for a
                    // week, and booted back.
                    let back = esc.first_ue.plus_secs(SimTime::WEEK);
                    if back < cfg.window_end {
                        events.push(LogEvent::new(back, dimm.id.node, EventKind::NodeBoot));
                    }
                }
            }
        }
    }

    /// Administrative DIMM retirements triggered by the (unobserved) pre-failure alert.
    /// Most retired DIMMs have no preceding errors in the log, matching Section 2.1.4.
    fn generate_retirements(&self, rng: &mut StdRng, events: &mut Vec<LogEvent>) {
        let cfg = &self.config;
        let dimms: Vec<DimmId> = cfg.fleet.dimms().map(|d| d.id).collect();
        if dimms.is_empty() {
            return;
        }
        let when = Uniform::new(
            cfg.window_start.as_secs() as f64,
            cfg.window_end.as_secs() as f64,
        );
        for _ in 0..cfg.retired_dimm_count {
            let dimm = dimms[rng.gen_range(0..dimms.len())];
            let t = SimTime::from_secs(when.sample(rng) as i64);
            events.push(LogEvent::new(
                t,
                dimm.node,
                EventKind::DimmRetirement { slot: dimm.slot },
            ));
        }
    }

    /// Critical over-temperature shutdowns (counted as UEs), followed by a node boot.
    fn generate_overtemps(&self, rng: &mut StdRng, events: &mut Vec<LogEvent>) {
        let cfg = &self.config;
        let node_count = cfg.fleet.node_count();
        if node_count == 0 {
            return;
        }
        let when = Uniform::new(
            cfg.window_start.as_secs() as f64,
            cfg.window_end.as_secs() as f64,
        );
        for _ in 0..cfg.overtemp_events {
            let node = cfg.fleet.nodes()[rng.gen_range(0..node_count)].id;
            let t = SimTime::from_secs(when.sample(rng) as i64);
            events.push(LogEvent::new(t, node, EventKind::OverTemperature));
            let back = t.plus_secs(SimTime::DAY);
            if back < cfg.window_end {
                events.push(LogEvent::new(back, node, EventKind::NodeBoot));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::reduce_ue_bursts;

    fn small_log(seed: u64) -> ErrorLog {
        TraceGenerator::new(SyntheticLogConfig::small(60, 120, seed)).generate()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = small_log(42);
        let b = small_log(42);
        assert_eq!(a.events(), b.events());
        let c = small_log(43);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn events_stay_inside_the_window() {
        let log = small_log(1);
        for e in log.events() {
            assert!(e.time >= log.window_start());
            assert!(e.time < log.window_end());
        }
    }

    #[test]
    fn dense_test_preset_produces_all_event_kinds() {
        let log = small_log(7);
        let mut kinds = std::collections::HashSet::new();
        for e in log.events() {
            kinds.insert(e.kind.name());
        }
        for expected in ["CE", "UE", "BOOT", "WARN", "RETIRE"] {
            assert!(kinds.contains(expected), "missing {expected} events");
        }
    }

    #[test]
    fn corrected_errors_vastly_outnumber_uncorrected() {
        let log = small_log(11);
        let ce = log.total_corrected_errors();
        let ue = log.total_uncorrected_errors() as u64;
        assert!(ue > 0, "the dense preset must produce some UEs");
        assert!(ce > 100 * ue, "CE={ce} should dwarf UE={ue}");
    }

    #[test]
    fn every_node_boots_at_window_start() {
        let log = small_log(3);
        for node in log.fleet().nodes() {
            let first = log.events_for_node(node.id).next().expect("events exist");
            assert_eq!(first.time, log.window_start());
            assert_eq!(first.kind, EventKind::NodeBoot);
        }
    }

    #[test]
    fn ue_bursts_collapse_under_reduction() {
        let log = small_log(19);
        let raw = log.total_uncorrected_errors();
        let reduced = reduce_ue_bursts(&log);
        let effective = reduced.total_uncorrected_errors();
        assert!(effective <= raw);
        assert!(effective > 0);
    }

    #[test]
    fn marenostrum3_preset_has_published_shape() {
        let cfg = SyntheticLogConfig::marenostrum3(5);
        assert_eq!(cfg.fleet.node_count(), 3056);
        assert!((cfg.window_days() - 730.0).abs() < 1e-9);
        assert_eq!(cfg.retired_dimm_count, 51);
    }

    /// Full-scale calibration check against the published aggregates. Expensive (a few
    /// seconds in release, tens of seconds in debug), so ignored by default:
    /// `cargo test -p uerl-trace --release -- --ignored calibration`.
    #[test]
    #[ignore = "full-scale MareNostrum 3 generation; run explicitly"]
    fn calibration_matches_published_aggregates() {
        let log = TraceGenerator::new(SyntheticLogConfig::marenostrum3(1)).generate();
        let ce = log.total_corrected_errors();
        assert!(
            (1_500_000..=9_000_000).contains(&ce),
            "corrected errors {ce} outside calibration band"
        );
        let raw_ue = log.total_uncorrected_errors();
        assert!(
            (150..=700).contains(&raw_ue),
            "raw UEs {raw_ue} outside calibration band"
        );
        let reduced = reduce_ue_bursts(&log);
        let effective = reduced.total_uncorrected_errors();
        assert!(
            (30..=130).contains(&effective),
            "effective UEs {effective} outside calibration band"
        );
        let merged = log.merged_events().len();
        assert!(
            (100_000..=600_000).contains(&merged),
            "merged events {merged} outside calibration band"
        );
    }
}
