//! # uerl-trace
//!
//! MareNostrum-style DRAM error-log substrate.
//!
//! The paper trains and evaluates its mitigation policies on two years of production error
//! logs from MareNostrum 3 (Oct 2014 – Nov 2016): 3056 compute nodes, more than 25,000
//! DDR3-1600 DIMMs from three anonymised manufacturers, 4.5 million corrected errors (CEs)
//! and 333 uncorrected errors (UEs), which reduce to 67 *effective* UEs after keeping only
//! the first UE of each per-node burst. Those logs are not public, so this crate rebuilds
//! the substrate from scratch:
//!
//! * a **fleet model** ([`fleet`]) describing nodes, DIMM slots and manufacturers;
//! * a **fault-process model** ([`faults`]) in which individual DIMMs develop transient,
//!   stuck-cell, row/bank and UE-precursor faults that emit corrected errors, UE warnings
//!   and eventually uncorrected errors with the burstiness reported in the paper;
//! * the **monitoring pipeline** ([`scrubber`]) that turns raw error instants into what the
//!   mcelog-based daemon actually records (per-100 ms counts with detailed location
//!   information for only one error per period, patrol-scrub vs demand-read detection);
//! * a **synthetic log generator** ([`generator`]) that ties these together and produces an
//!   [`ErrorLog`] whose aggregate statistics match the published ones;
//! * **log plumbing**: the event model ([`events`]), the log container and per-minute
//!   merging ([`log`]), an mcelog-style text format ([`mcelog`]), the paper's UE burst
//!   reduction and DIMM-retirement-bias filtering ([`reduction`]) and quantitative
//!   statistics ([`stats`]).
//!
//! Downstream crates never look at how the log was produced: `uerl-core` consumes an
//! [`ErrorLog`] exactly as it would consume a parsed production log.

pub mod events;
pub mod faults;
pub mod fleet;
pub mod generator;
pub mod log;
pub mod mcelog;
pub mod reduction;
pub mod scrubber;
pub mod stats;
pub mod types;

pub use events::{CeDetail, Detector, EventKind, LogEvent, WarningReason};
pub use fleet::{Dimm, FleetConfig, NodeInfo};
pub use generator::{SyntheticLogConfig, TraceGenerator};
pub use log::ErrorLog;
pub use reduction::{filter_retirement_bias, reduce_ue_bursts};
pub use stats::LogStatistics;
pub use types::{CellLocation, DimmId, Manufacturer, NodeId, SimTime};
