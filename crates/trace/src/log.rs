//! The error-log container and per-minute event merging.

use crate::events::{CeDetail, Detector, EventKind, LogEvent};
use crate::fleet::FleetConfig;
use crate::types::{Manufacturer, NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A complete error log: the fleet it was collected on, the observation window, and the
/// time-ordered sequence of events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorLog {
    fleet: FleetConfig,
    window_start: SimTime,
    window_end: SimTime,
    events: Vec<LogEvent>,
}

impl ErrorLog {
    /// Build a log from events (sorted internally) over the window `[start, end)`.
    ///
    /// # Panics
    /// Panics if the window is empty.
    pub fn new(
        fleet: FleetConfig,
        mut events: Vec<LogEvent>,
        window_start: SimTime,
        window_end: SimTime,
    ) -> Self {
        assert!(
            window_end > window_start,
            "observation window must be non-empty"
        );
        events.sort_by_key(|e| e.sort_key());
        Self {
            fleet,
            window_start,
            window_end,
            events,
        }
    }

    /// The fleet the log was collected on.
    pub fn fleet(&self) -> &FleetConfig {
        &self.fleet
    }

    /// Start of the observation window.
    pub fn window_start(&self) -> SimTime {
        self.window_start
    }

    /// End of the observation window.
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// Length of the observation window in days.
    pub fn window_days(&self) -> f64 {
        (self.window_end - self.window_start) as f64 / SimTime::DAY as f64
    }

    /// All events, sorted by time.
    pub fn events(&self) -> &[LogEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterate over the events of one node, in time order.
    pub fn events_for_node(&self, node: NodeId) -> impl Iterator<Item = &LogEvent> {
        self.events.iter().filter(move |e| e.node == node)
    }

    /// The set of nodes that have at least one event.
    pub fn nodes_with_events(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.events.iter().map(|e| e.node).collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Total number of corrected errors (the sum of record counts, i.e. the "4.5 million
    /// corrected errors" statistic, not the number of CE records).
    pub fn total_corrected_errors(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.kind.corrected_count() as u64)
            .sum()
    }

    /// Number of events whose kind is fatal (uncorrected errors plus over-temperature
    /// conditions, which the paper counts as UEs).
    pub fn total_uncorrected_errors(&self) -> usize {
        self.events.iter().filter(|e| e.is_fatal()).count()
    }

    /// A copy of this log restricted to the given time range `[start, end)`.
    pub fn slice(&self, start: SimTime, end: SimTime) -> Self {
        Self {
            fleet: self.fleet.clone(),
            window_start: start,
            window_end: end,
            events: self
                .events
                .iter()
                .filter(|e| e.time >= start && e.time < end)
                .copied()
                .collect(),
        }
    }

    /// A copy of this log restricted to the nodes of one DRAM manufacturer, used by the
    /// MN/A, MN/B and MN/C scenarios (Section 4.5).
    pub fn restrict_to_manufacturer(&self, manufacturer: Manufacturer) -> Self {
        let fleet = self.fleet.restricted_to(manufacturer);
        let keep: std::collections::HashSet<NodeId> = fleet.nodes().iter().map(|n| n.id).collect();
        Self {
            fleet,
            window_start: self.window_start,
            window_end: self.window_end,
            events: self
                .events
                .iter()
                .filter(|e| keep.contains(&e.node))
                .copied()
                .collect(),
        }
    }

    /// Merge the log into per-node, per-minute [`MergedEvent`]s, as required by the MDP
    /// formulation ("there is a minimum wallclock time between state transitions of one
    /// minute, so that events occurring within the same minute are combined").
    pub fn merged_events(&self) -> Vec<MergedEvent> {
        let mut buckets: BTreeMap<(SimTime, NodeId), MergedEvent> = BTreeMap::new();
        for event in &self.events {
            let key = (event.time.floor_minute(), event.node);
            let merged = buckets.entry(key).or_insert_with(|| MergedEvent {
                time: key.0,
                node: key.1,
                ce_count: 0,
                ce_details: Vec::new(),
                ue_warnings: 0,
                boots: 0,
                retired_slots: Vec::new(),
                fatal: false,
                ue_detector: None,
            });
            merged.absorb(event);
        }
        buckets.into_values().collect()
    }

    /// Merge the events of a single node into per-minute [`MergedEvent`]s.
    pub fn merged_events_for_node(&self, node: NodeId) -> Vec<MergedEvent> {
        let mut buckets: BTreeMap<SimTime, MergedEvent> = BTreeMap::new();
        for event in self.events_for_node(node) {
            let key = event.time.floor_minute();
            let merged = buckets.entry(key).or_insert_with(|| MergedEvent {
                time: key,
                node,
                ce_count: 0,
                ce_details: Vec::new(),
                ue_warnings: 0,
                boots: 0,
                retired_slots: Vec::new(),
                fatal: false,
                ue_detector: None,
            });
            merged.absorb(event);
        }
        buckets.into_values().collect()
    }
}

/// All events of one node within one minute, combined into a single observation.
///
/// This is the granularity at which the environment invokes the mitigation policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedEvent {
    /// Minute (floored) the events belong to.
    pub time: SimTime,
    /// Node the events belong to.
    pub node: NodeId,
    /// Total corrected errors observed in the minute.
    pub ce_count: u32,
    /// Detailed CE samples observed in the minute.
    pub ce_details: Vec<CeDetail>,
    /// Number of firmware UE warnings in the minute.
    pub ue_warnings: u32,
    /// Number of node boots in the minute.
    pub boots: u32,
    /// Slots of DIMMs retired in the minute.
    pub retired_slots: Vec<u8>,
    /// Whether a fatal event (UE or over-temperature) occurred in the minute.
    pub fatal: bool,
    /// Detector of the UE, when `fatal` is due to an uncorrected error.
    pub ue_detector: Option<Detector>,
}

impl MergedEvent {
    /// Fold one raw event into this merged observation.
    fn absorb(&mut self, event: &LogEvent) {
        match &event.kind {
            EventKind::CorrectedError { count, detail } => {
                self.ce_count += count;
                if let Some(d) = detail {
                    self.ce_details.push(*d);
                }
            }
            EventKind::UncorrectedError { detector, .. } => {
                self.fatal = true;
                self.ue_detector = Some(*detector);
            }
            EventKind::OverTemperature => {
                self.fatal = true;
            }
            EventKind::UeWarning { .. } => self.ue_warnings += 1,
            EventKind::NodeBoot => self.boots += 1,
            EventKind::DimmRetirement { slot } => self.retired_slots.push(*slot),
        }
    }

    /// Whether the minute contained a DIMM retirement.
    pub fn has_retirement(&self) -> bool {
        !self.retired_slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::WarningReason;
    use crate::types::{CellLocation, DimmId};

    fn ce(node: u32, t: i64, count: u32) -> LogEvent {
        LogEvent::new(
            SimTime::from_secs(t),
            NodeId(node),
            EventKind::CorrectedError {
                count,
                detail: Some(CeDetail {
                    dimm: DimmId::new(NodeId(node), 0),
                    location: CellLocation::new(0, 0, 1, 1),
                    detector: Detector::DemandRead,
                }),
            },
        )
    }

    fn ue(node: u32, t: i64) -> LogEvent {
        LogEvent::new(
            SimTime::from_secs(t),
            NodeId(node),
            EventKind::UncorrectedError {
                dimm: DimmId::new(NodeId(node), 0),
                detector: Detector::PatrolScrub,
            },
        )
    }

    fn boot(node: u32, t: i64) -> LogEvent {
        LogEvent::new(SimTime::from_secs(t), NodeId(node), EventKind::NodeBoot)
    }

    fn warning(node: u32, t: i64) -> LogEvent {
        LogEvent::new(
            SimTime::from_secs(t),
            NodeId(node),
            EventKind::UeWarning {
                reason: WarningReason::CeLoggingLimit,
            },
        )
    }

    fn small_log(events: Vec<LogEvent>) -> ErrorLog {
        ErrorLog::new(
            FleetConfig::small(10),
            events,
            SimTime::ZERO,
            SimTime::from_days(30),
        )
    }

    #[test]
    fn events_are_sorted_on_construction() {
        let log = small_log(vec![ce(1, 500, 1), boot(0, 100), ce(2, 200, 3)]);
        let times: Vec<i64> = log.events().iter().map(|e| e.time.as_secs()).collect();
        assert_eq!(times, vec![100, 200, 500]);
    }

    #[test]
    fn totals_count_errors_not_records() {
        let log = small_log(vec![ce(1, 10, 5), ce(1, 20, 7), ue(2, 30)]);
        assert_eq!(log.total_corrected_errors(), 12);
        assert_eq!(log.total_uncorrected_errors(), 1);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn per_node_iteration() {
        let log = small_log(vec![ce(1, 10, 1), ce(2, 20, 1), ce(1, 30, 1)]);
        assert_eq!(log.events_for_node(NodeId(1)).count(), 2);
        assert_eq!(log.events_for_node(NodeId(5)).count(), 0);
        assert_eq!(log.nodes_with_events(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn slicing_respects_half_open_range() {
        let log = small_log(vec![ce(1, 10, 1), ce(1, 100, 1), ce(1, 200, 1)]);
        let s = log.slice(SimTime::from_secs(10), SimTime::from_secs(200));
        assert_eq!(s.len(), 2);
        assert_eq!(s.window_start(), SimTime::from_secs(10));
        assert_eq!(s.window_end(), SimTime::from_secs(200));
    }

    #[test]
    fn manufacturer_restriction_keeps_only_matching_nodes() {
        let fleet = FleetConfig::small(30);
        let a_node = fleet.nodes_of(Manufacturer::A)[0];
        let c_node = fleet.nodes_of(Manufacturer::C)[0];
        let log = ErrorLog::new(
            fleet,
            vec![ce(a_node.0, 10, 1), ce(c_node.0, 20, 1)],
            SimTime::ZERO,
            SimTime::from_days(1),
        );
        let only_a = log.restrict_to_manufacturer(Manufacturer::A);
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_a.events()[0].node, a_node);
        assert!(only_a
            .fleet()
            .nodes()
            .iter()
            .all(|n| n.manufacturer == Manufacturer::A));
    }

    #[test]
    fn merging_combines_same_minute_same_node() {
        // Two CE records and a warning for node 1 in the same minute, a boot for node 2.
        let log = small_log(vec![
            ce(1, 65, 3),
            ce(1, 100, 4),
            warning(1, 110),
            boot(2, 70),
        ]);
        let merged = log.merged_events();
        assert_eq!(merged.len(), 2);
        let node1 = merged.iter().find(|m| m.node == NodeId(1)).unwrap();
        assert_eq!(node1.time, SimTime::from_minutes(1));
        assert_eq!(node1.ce_count, 7);
        assert_eq!(node1.ce_details.len(), 2);
        assert_eq!(node1.ue_warnings, 1);
        assert!(!node1.fatal);
        let node2 = merged.iter().find(|m| m.node == NodeId(2)).unwrap();
        assert_eq!(node2.boots, 1);
    }

    #[test]
    fn merging_keeps_separate_minutes_separate() {
        let log = small_log(vec![ce(1, 30, 1), ce(1, 90, 1)]);
        let merged = log.merged_events_for_node(NodeId(1));
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].time, SimTime::ZERO);
        assert_eq!(merged[1].time, SimTime::from_minutes(1));
    }

    #[test]
    fn merging_marks_fatal_minutes() {
        let log = small_log(vec![ce(1, 30, 1), ue(1, 45)]);
        let merged = log.merged_events_for_node(NodeId(1));
        assert_eq!(merged.len(), 1);
        assert!(merged[0].fatal);
        assert_eq!(merged[0].ue_detector, Some(Detector::PatrolScrub));
        assert_eq!(merged[0].ce_count, 1);
    }

    #[test]
    fn merged_events_are_globally_time_ordered() {
        let log = small_log(vec![ce(2, 300, 1), ce(1, 30, 1), ce(1, 600, 1)]);
        let merged = log.merged_events();
        let times: Vec<i64> = merged.iter().map(|m| m.time.as_secs()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_rejected() {
        ErrorLog::new(FleetConfig::small(3), vec![], SimTime::ZERO, SimTime::ZERO);
    }
}
