//! An mcelog-inspired plain-text serialization of the error log.
//!
//! The production pipeline stores one line per record; this module provides a similarly
//! shaped, human-greppable text format so synthetic logs can be written to disk, inspected
//! and re-loaded (and so the rest of the system exercises a parse path just as it would
//! with real logs). The format is line-oriented:
//!
//! ```text
//! # uerl-trace v1 nodes=60 dimms=240 window=0..10368000
//! 3600 node-0007 CE count=12 dimm=3 rank=1 bank=4 row=8812 col=112 det=patrol
//! 7200 node-0007 WARN reason=ce-limit
//! 9000 node-0012 UE dimm=0 det=demand
//! 9600 node-0012 BOOT
//! 12000 node-0019 OVERTEMP
//! 15000 node-0021 RETIRE slot=2
//! ```
//!
//! Fields are space-separated `key=value` pairs after the timestamp (seconds), node and
//! event tag. Unknown keys are ignored by the parser so the format can be extended.

use crate::events::{CeDetail, Detector, EventKind, LogEvent, WarningReason};
use crate::fleet::FleetConfig;
use crate::log::ErrorLog;
use crate::types::{CellLocation, DimmId, NodeId, SimTime};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors produced when parsing the mcelog-style text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A data line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation of what went wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad header: {h}"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a log to the mcelog-style text format.
pub fn to_text(log: &ErrorLog) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# uerl-trace v1 nodes={} dimms={} window={}..{}",
        log.fleet().node_count(),
        log.fleet().dimm_count(),
        log.window_start().as_secs(),
        log.window_end().as_secs()
    );
    for event in log.events() {
        let _ = writeln!(out, "{}", event_to_line(event));
    }
    out
}

/// Parse a log from the mcelog-style text format, attaching the supplied fleet
/// description (the text format does not carry manufacturer information).
pub fn from_text(text: &str, fleet: FleetConfig) -> Result<ErrorLog, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("empty input".into()))?;
    let (start, end) = parse_header(header)?;
    let mut events = Vec::new();
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        events.push(parse_line(line).map_err(|reason| ParseError::BadLine {
            line: idx + 1,
            reason,
        })?);
    }
    Ok(ErrorLog::new(fleet, events, start, end))
}

fn parse_header(header: &str) -> Result<(SimTime, SimTime), ParseError> {
    if !header.starts_with("# uerl-trace v1") {
        return Err(ParseError::BadHeader(header.to_string()));
    }
    let window = header
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("window="))
        .ok_or_else(|| ParseError::BadHeader("missing window=".into()))?;
    let (s, e) = window
        .split_once("..")
        .ok_or_else(|| ParseError::BadHeader("malformed window".into()))?;
    let start = s
        .parse::<i64>()
        .map_err(|_| ParseError::BadHeader("bad window start".into()))?;
    let end = e
        .parse::<i64>()
        .map_err(|_| ParseError::BadHeader("bad window end".into()))?;
    Ok((SimTime::from_secs(start), SimTime::from_secs(end)))
}

fn event_to_line(event: &LogEvent) -> String {
    let t = event.time.as_secs();
    let node = event.node.0;
    match &event.kind {
        EventKind::CorrectedError { count, detail } => {
            match detail {
                Some(d) => format!(
                "{t} node-{node:04} CE count={count} dimm={} rank={} bank={} row={} col={} det={}",
                d.dimm.slot, d.location.rank, d.location.bank, d.location.row, d.location.column,
                d.detector.label()
            ),
                None => format!("{t} node-{node:04} CE count={count}"),
            }
        }
        EventKind::UncorrectedError { dimm, detector } => format!(
            "{t} node-{node:04} UE dimm={} det={}",
            dimm.slot,
            detector.label()
        ),
        EventKind::OverTemperature => format!("{t} node-{node:04} OVERTEMP"),
        EventKind::UeWarning { reason } => {
            format!("{t} node-{node:04} WARN reason={}", reason.label())
        }
        EventKind::NodeBoot => format!("{t} node-{node:04} BOOT"),
        EventKind::DimmRetirement { slot } => {
            format!("{t} node-{node:04} RETIRE slot={slot}")
        }
    }
}

fn parse_line(line: &str) -> Result<LogEvent, String> {
    let mut parts = line.split_whitespace();
    let time: i64 = parts
        .next()
        .ok_or("missing timestamp")?
        .parse()
        .map_err(|_| "bad timestamp".to_string())?;
    let node_tok = parts.next().ok_or("missing node")?;
    let node_num = node_tok
        .strip_prefix("node-")
        .ok_or("node field must start with 'node-'")?
        .parse::<u32>()
        .map_err(|_| "bad node id".to_string())?;
    let node = NodeId(node_num);
    let tag = parts.next().ok_or("missing event tag")?;
    let kv: HashMap<&str, &str> = parts.filter_map(|p| p.split_once('=')).collect();

    let get_u32 = |key: &str| -> Result<u32, String> {
        kv.get(key)
            .ok_or_else(|| format!("missing {key}="))?
            .parse()
            .map_err(|_| format!("bad {key}="))
    };

    let kind = match tag {
        "CE" => {
            let count = get_u32("count")?;
            let detail = if kv.contains_key("dimm") {
                let detector = Detector::from_label(kv.get("det").copied().unwrap_or("demand"))
                    .ok_or("bad det=")?;
                Some(CeDetail {
                    dimm: DimmId::new(node, get_u32("dimm")? as u8),
                    location: CellLocation::new(
                        get_u32("rank")? as u8,
                        get_u32("bank")? as u8,
                        get_u32("row")?,
                        get_u32("col")?,
                    ),
                    detector,
                })
            } else {
                None
            };
            EventKind::CorrectedError { count, detail }
        }
        "UE" => {
            let detector = Detector::from_label(kv.get("det").copied().unwrap_or("demand"))
                .ok_or("bad det=")?;
            EventKind::UncorrectedError {
                dimm: DimmId::new(node, get_u32("dimm")? as u8),
                detector,
            }
        }
        "OVERTEMP" => EventKind::OverTemperature,
        "WARN" => {
            let reason = WarningReason::from_label(kv.get("reason").copied().unwrap_or(""))
                .ok_or("bad reason=")?;
            EventKind::UeWarning { reason }
        }
        "BOOT" => EventKind::NodeBoot,
        "RETIRE" => EventKind::DimmRetirement {
            slot: get_u32("slot")? as u8,
        },
        other => return Err(format!("unknown event tag '{other}'")),
    };
    Ok(LogEvent::new(SimTime::from_secs(time), node, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{SyntheticLogConfig, TraceGenerator};

    #[test]
    fn round_trip_preserves_every_event() {
        let log = TraceGenerator::new(SyntheticLogConfig::small(20, 30, 9)).generate();
        let text = to_text(&log);
        let parsed = from_text(&text, log.fleet().clone()).expect("parse");
        assert_eq!(parsed.events(), log.events());
        assert_eq!(parsed.window_start(), log.window_start());
        assert_eq!(parsed.window_end(), log.window_end());
    }

    #[test]
    fn header_carries_window() {
        let log = TraceGenerator::new(SyntheticLogConfig::small(5, 10, 1)).generate();
        let text = to_text(&log);
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("# uerl-trace v1"));
        assert!(first.contains("window=0.."));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text =
            "# uerl-trace v1 nodes=3 dimms=12 window=0..86400\n\n# comment\n60 node-0001 BOOT\n";
        let log = from_text(text, FleetConfig::small(3)).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.events()[0].kind, EventKind::NodeBoot);
    }

    #[test]
    fn rejects_missing_header() {
        let err = from_text("60 node-0001 BOOT\n", FleetConfig::small(3)).unwrap_err();
        assert!(matches!(err, ParseError::BadHeader(_)));
    }

    #[test]
    fn rejects_unknown_tag_with_line_number() {
        let text = "# uerl-trace v1 nodes=3 dimms=12 window=0..86400\n60 node-0001 WAT\n";
        let err = from_text(text, FleetConfig::small(3)).unwrap_err();
        match err {
            ParseError::BadLine { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("unknown event tag"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_ce() {
        let text = "# uerl-trace v1 nodes=3 dimms=12 window=0..86400\n60 node-0001 CE\n";
        let err = from_text(text, FleetConfig::small(3)).unwrap_err();
        assert!(matches!(err, ParseError::BadLine { .. }));
    }

    #[test]
    fn ce_without_detail_round_trips() {
        let text = "# uerl-trace v1 nodes=3 dimms=12 window=0..86400\n60 node-0002 CE count=5\n";
        let log = from_text(text, FleetConfig::small(3)).unwrap();
        assert_eq!(
            log.events()[0].kind,
            EventKind::CorrectedError {
                count: 5,
                detail: None
            }
        );
        let round = to_text(&log);
        assert!(round.contains("CE count=5"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParseError::BadLine {
            line: 7,
            reason: "bad timestamp".into(),
        };
        assert_eq!(e.to_string(), "line 7: bad timestamp");
        let h = ParseError::BadHeader("nope".into());
        assert!(h.to_string().contains("nope"));
    }
}
