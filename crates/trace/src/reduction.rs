//! Dataset reduction steps from Section 2.1.3 and 2.1.4 of the paper.
//!
//! * **UE burst reduction**: uncorrected errors appear in bursts; after the first UE the
//!   node is removed from production for one week, so only the first UE of each per-node
//!   burst affects a production workload. Reducing the MareNostrum 3 log this way shrinks
//!   333 UEs to 67 effective UEs and is "a major difference" to the method's design and
//!   evaluation.
//! * **DIMM retirement bias filtering**: DIMMs retired preventively by the administrators
//!   might or might not have gone on to produce a UE; since that is unknowable, all
//!   samples from a node after one of its DIMMs is retired are removed from training and
//!   evaluation.

use crate::events::EventKind;
use crate::log::ErrorLog;
use crate::types::{NodeId, SimTime};
use std::collections::HashMap;

/// Keep only the first fatal event (UE or over-temperature) of each per-node burst.
///
/// A fatal event is dropped if another fatal event occurred on the same node within the
/// preceding `window` (one week by default in [`reduce_ue_bursts`]). Non-fatal events are
/// kept untouched.
pub fn reduce_ue_bursts_with_window(log: &ErrorLog, window: i64) -> ErrorLog {
    let mut last_fatal: HashMap<NodeId, SimTime> = HashMap::new();
    let mut kept = Vec::with_capacity(log.len());
    for event in log.events() {
        if event.is_fatal() {
            let keep = match last_fatal.get(&event.node) {
                Some(&prev) => event.time.delta_secs(prev) > window,
                None => true,
            };
            if keep {
                last_fatal.insert(event.node, event.time);
                kept.push(*event);
            }
        } else {
            kept.push(*event);
        }
    }
    ErrorLog::new(
        log.fleet().clone(),
        kept,
        log.window_start(),
        log.window_end(),
    )
}

/// [`reduce_ue_bursts_with_window`] with the paper's one-week burst window.
pub fn reduce_ue_bursts(log: &ErrorLog) -> ErrorLog {
    reduce_ue_bursts_with_window(log, SimTime::WEEK)
}

/// Remove every event on a node after the first administrative DIMM retirement on that
/// node (including the retirement event itself), eliminating the retirement bias.
pub fn filter_retirement_bias(log: &ErrorLog) -> ErrorLog {
    let mut retired_at: HashMap<NodeId, SimTime> = HashMap::new();
    for event in log.events() {
        if matches!(event.kind, EventKind::DimmRetirement { .. }) {
            retired_at
                .entry(event.node)
                .and_modify(|t| *t = (*t).min(event.time))
                .or_insert(event.time);
        }
    }
    let kept: Vec<_> = log
        .events()
        .iter()
        .filter(|e| match retired_at.get(&e.node) {
            Some(&t) => e.time < t,
            None => true,
        })
        .copied()
        .collect();
    ErrorLog::new(
        log.fleet().clone(),
        kept,
        log.window_start(),
        log.window_end(),
    )
}

/// The standard preprocessing pipeline applied before training and evaluation:
/// retirement-bias filtering followed by UE burst reduction.
pub fn preprocess(log: &ErrorLog) -> ErrorLog {
    reduce_ue_bursts(&filter_retirement_bias(log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Detector, LogEvent};
    use crate::fleet::FleetConfig;
    use crate::types::DimmId;

    fn ue(node: u32, t: i64) -> LogEvent {
        LogEvent::new(
            SimTime::from_secs(t),
            NodeId(node),
            EventKind::UncorrectedError {
                dimm: DimmId::new(NodeId(node), 0),
                detector: Detector::DemandRead,
            },
        )
    }

    fn ce(node: u32, t: i64) -> LogEvent {
        LogEvent::new(
            SimTime::from_secs(t),
            NodeId(node),
            EventKind::CorrectedError {
                count: 1,
                detail: None,
            },
        )
    }

    fn retire(node: u32, t: i64) -> LogEvent {
        LogEvent::new(
            SimTime::from_secs(t),
            NodeId(node),
            EventKind::DimmRetirement { slot: 0 },
        )
    }

    fn log(events: Vec<LogEvent>) -> ErrorLog {
        ErrorLog::new(
            FleetConfig::small(10),
            events,
            SimTime::ZERO,
            SimTime::from_days(60),
        )
    }

    #[test]
    fn burst_reduction_keeps_first_of_burst() {
        let day = SimTime::DAY;
        let l = log(vec![
            ue(1, 0),
            ue(1, day),      // same burst (within a week)
            ue(1, 3 * day),  // same burst
            ue(1, 10 * day), // new burst (>1 week after the last kept UE)
            ue(2, 2 * day),  // different node: its own burst
        ]);
        let reduced = reduce_ue_bursts(&l);
        assert_eq!(reduced.total_uncorrected_errors(), 3);
        let kept_times: Vec<i64> = reduced
            .events()
            .iter()
            .filter(|e| e.is_fatal())
            .map(|e| e.time.as_secs())
            .collect();
        assert_eq!(kept_times, vec![0, 2 * day, 10 * day]);
    }

    #[test]
    fn burst_window_is_measured_from_last_kept_ue() {
        // UEs every 5 days: each is within a week of the previous *kept* one, so after the
        // first UE everything else collapses into the same rolling burst.
        let day = SimTime::DAY;
        let l = log(vec![ue(1, 0), ue(1, 5 * day), ue(1, 10 * day)]);
        let reduced = reduce_ue_bursts(&l);
        assert_eq!(reduced.total_uncorrected_errors(), 2);
    }

    #[test]
    fn burst_reduction_preserves_non_fatal_events() {
        let l = log(vec![ce(1, 10), ue(1, 20), ue(1, 30), ce(1, 40)]);
        let reduced = reduce_ue_bursts(&l);
        assert_eq!(reduced.total_uncorrected_errors(), 1);
        assert_eq!(reduced.total_corrected_errors(), 2);
    }

    #[test]
    fn retirement_filter_drops_everything_after_retirement() {
        let l = log(vec![
            ce(1, 10),
            retire(1, 20),
            ce(1, 30),
            ue(1, 40),
            ce(2, 50),
        ]);
        let filtered = filter_retirement_bias(&l);
        // Node 1 keeps only the event before the retirement; node 2 is untouched.
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.total_uncorrected_errors(), 0);
        assert!(filtered
            .events()
            .iter()
            .all(|e| !matches!(e.kind, EventKind::DimmRetirement { .. })));
    }

    #[test]
    fn retirement_filter_uses_earliest_retirement() {
        let l = log(vec![retire(1, 100), retire(1, 10), ce(1, 50)]);
        let filtered = filter_retirement_bias(&l);
        assert!(
            filtered.is_empty(),
            "event at t=50 is after the t=10 retirement"
        );
    }

    #[test]
    fn preprocess_composes_both_steps() {
        let day = SimTime::DAY;
        let l = log(vec![
            ue(1, 0),
            ue(1, day),
            retire(2, 10),
            ce(2, 20),
            ue(3, 2 * day),
        ]);
        let p = preprocess(&l);
        // Node 1: burst reduced to one UE. Node 2: everything dropped. Node 3: kept.
        assert_eq!(p.total_uncorrected_errors(), 2);
        assert_eq!(p.events_for_node(NodeId(2)).count(), 0);
    }

    #[test]
    fn reduction_is_idempotent() {
        let day = SimTime::DAY;
        let l = log(vec![ue(1, 0), ue(1, day), ue(1, 20 * day)]);
        let once = reduce_ue_bursts(&l);
        let twice = reduce_ue_bursts(&once);
        assert_eq!(once.events(), twice.events());
    }
}
