//! The monitoring pipeline: what the mcelog-based daemon actually records.
//!
//! On MareNostrum 3, a daemon polled the Intel machine-check-architecture registers every
//! 100 ms. Within a polling period the registers hold the *number* of corrected errors
//! plus detailed location information for only *one* of them; the daemon therefore logs
//! the precise CE count but a sampled subset of the details (Section 2.1.1). Each ECC
//! check is performed either on an application memory request (demand read) or by the
//! patrol scrubber that periodically traverses physical memory.
//!
//! The [`DaemonModel`] reproduces that pipeline: given a burst of raw corrected-error
//! instants produced by the fault model, it emits the corrected-error log records the
//! daemon would have written — grouping instants into sampling periods, summing counts,
//! and attaching the detail of one error per record.

use crate::events::{CeDetail, Detector, EventKind, LogEvent};
use crate::faults::{FaultClass, FaultRegion};
use crate::types::{DimmId, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use uerl_stats::{Bernoulli, Distribution};

/// Configuration of the monitoring daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaemonConfig {
    /// Polling period of the daemon in milliseconds (100 ms on MareNostrum 3).
    pub period_ms: u64,
    /// Probability that an individual ECC check that finds an error is a patrol-scrub
    /// check rather than a demand read. Patrol scrubbing finds a substantial share of
    /// errors because it touches all of memory, including pages applications never read.
    pub p_patrol: f64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            period_ms: 100,
            p_patrol: 0.4,
        }
    }
}

/// A burst of raw corrected-error instants on one DIMM, before the daemon sees them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawCeBurst {
    /// DIMM producing the errors.
    pub dimm: DimmId,
    /// Start of the burst.
    pub start: SimTime,
    /// Duration of the burst in seconds (0 means all errors hit within one second).
    pub duration_secs: i64,
    /// Total number of corrected errors in the burst.
    pub count: u32,
    /// Fault class driving the burst (controls how locations are sampled).
    pub class: FaultClass,
    /// Physical region of the underlying fault.
    pub region: FaultRegion,
}

/// The monitoring daemon model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaemonModel {
    config: DaemonConfig,
}

impl DaemonModel {
    /// Create a daemon model.
    ///
    /// # Panics
    /// Panics if the period is zero or `p_patrol` is outside `[0, 1]`.
    pub fn new(config: DaemonConfig) -> Self {
        assert!(config.period_ms > 0, "daemon period must be positive");
        assert!(
            (0.0..=1.0).contains(&config.p_patrol),
            "p_patrol must be a probability"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Number of daemon records a burst of `count` errors over `duration_secs` seconds
    /// collapses to.
    ///
    /// The daemon writes at most one record per polling period, so a one-second burst of
    /// 500 errors becomes at most `1000 / period_ms` records; and it never writes more
    /// records than there are errors.
    pub fn records_for_burst(&self, count: u32, duration_secs: i64) -> u32 {
        if count == 0 {
            return 0;
        }
        let periods_per_sec = (1000 / self.config.period_ms).max(1);
        let periods = (duration_secs.max(1) as u64).saturating_mul(periods_per_sec);
        count.min(periods.min(u32::MAX as u64) as u32).max(1)
    }

    /// Convert a raw burst into the corrected-error log events the daemon records.
    ///
    /// Counts are preserved exactly (the sum of record counts equals the burst count);
    /// detail is attached to every record, mirroring the "precise number of CEs, detailed
    /// information for a subset" property of the production logs.
    pub fn record_burst<R: Rng + ?Sized>(&self, burst: &RawCeBurst, rng: &mut R) -> Vec<LogEvent> {
        if burst.count == 0 {
            return Vec::new();
        }
        let records = self.records_for_burst(burst.count, burst.duration_secs);
        let base = burst.count / records;
        let remainder = burst.count % records;
        let patrol = Bernoulli::new(self.config.p_patrol);
        let mut events = Vec::with_capacity(records as usize);
        for i in 0..records {
            // Spread record timestamps uniformly across the burst duration.
            let offset = if records == 1 {
                0
            } else {
                (burst.duration_secs.max(0) as f64 * i as f64 / records as f64) as i64
            };
            let count = base + u32::from(i < remainder);
            if count == 0 {
                continue;
            }
            let detector = if patrol.sample(rng) {
                Detector::PatrolScrub
            } else {
                Detector::DemandRead
            };
            let detail = CeDetail {
                dimm: burst.dimm,
                location: burst.region.sample_location(burst.class, rng),
                detector,
            };
            events.push(LogEvent::new(
                burst.start.plus_secs(offset),
                burst.dimm.node,
                EventKind::CorrectedError {
                    count,
                    detail: Some(detail),
                },
            ));
        }
        events
    }
}

impl Default for DaemonModel {
    fn default() -> Self {
        Self::new(DaemonConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn burst(count: u32, duration_secs: i64) -> RawCeBurst {
        RawCeBurst {
            dimm: DimmId::new(NodeId(2), 1),
            start: SimTime::from_hours(1),
            duration_secs,
            count,
            class: FaultClass::RowFault,
            region: FaultRegion {
                rank: 1,
                bank: 2,
                row: 42,
                column: 7,
            },
        }
    }

    #[test]
    fn record_count_bounds() {
        let d = DaemonModel::default();
        // 100 ms period -> 10 records per second maximum.
        assert_eq!(d.records_for_burst(500, 1), 10);
        assert_eq!(d.records_for_burst(3, 1), 3);
        assert_eq!(d.records_for_burst(0, 10), 0);
        assert_eq!(d.records_for_burst(1, 0), 1);
        assert_eq!(d.records_for_burst(1_000_000, 60), 600);
    }

    #[test]
    fn counts_are_preserved_exactly() {
        let d = DaemonModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        for (count, dur) in [(1u32, 0i64), (7, 1), (523, 1), (10_000, 30)] {
            let events = d.record_burst(&burst(count, dur), &mut rng);
            let total: u32 = events.iter().map(|e| e.kind.corrected_count()).sum();
            assert_eq!(total, count, "burst of {count} over {dur}s");
        }
    }

    #[test]
    fn every_record_carries_detail_on_the_right_dimm() {
        let d = DaemonModel::default();
        let mut rng = StdRng::seed_from_u64(4);
        let events = d.record_burst(&burst(523, 1), &mut rng);
        for e in &events {
            match e.kind {
                EventKind::CorrectedError {
                    detail: Some(det), ..
                } => {
                    assert_eq!(det.dimm, DimmId::new(NodeId(2), 1));
                    assert_eq!(det.location.row, 42, "row fault keeps the faulty row");
                }
                other => panic!("unexpected event {other:?}"),
            }
            assert_eq!(e.node, NodeId(2));
        }
    }

    #[test]
    fn timestamps_span_the_burst_duration() {
        let d = DaemonModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        let b = burst(10_000, 30);
        let events = d.record_burst(&b, &mut rng);
        let first = events.first().unwrap().time;
        let last = events.last().unwrap().time;
        assert_eq!(first, b.start);
        assert!(last > b.start);
        assert!(last.delta_secs(b.start) < 30);
    }

    #[test]
    fn both_detectors_appear_over_many_records() {
        let d = DaemonModel::default();
        let mut rng = StdRng::seed_from_u64(6);
        let events = d.record_burst(&burst(10_000, 60), &mut rng);
        let patrol = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CorrectedError { detail: Some(det), .. } if det.detector == Detector::PatrolScrub))
            .count();
        assert!(patrol > 0 && patrol < events.len());
    }

    #[test]
    fn empty_burst_produces_nothing() {
        let d = DaemonModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(d.record_burst(&burst(0, 10), &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        DaemonModel::new(DaemonConfig {
            period_ms: 0,
            p_patrol: 0.5,
        });
    }
}
