//! Quantitative analysis of an error log (the Section 2.1.5 / Zivanovic-style statistics).
//!
//! [`LogStatistics`] summarises a log: event counts by kind, corrected-error totals and
//! concentration, uncorrected-error counts (raw and per manufacturer), and the fraction of
//! effective UEs that have no preceding event within 24 hours (which bounds the recall any
//! event-triggered mitigation policy can achieve — Table 2's 63% ceiling).

use crate::events::EventKind;
use crate::log::ErrorLog;
use crate::types::{DimmId, Manufacturer, NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Summary statistics of an error log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogStatistics {
    /// Number of raw log records by event kind name ("CE", "UE", "BOOT", ...).
    pub records_by_kind: BTreeMap<String, usize>,
    /// Total corrected errors (sum of record counts).
    pub total_corrected_errors: u64,
    /// Number of distinct DIMMs with at least one detailed CE record.
    pub dimms_with_ce: usize,
    /// Fraction of all corrected errors produced by the single noisiest DIMM.
    pub top_dimm_ce_share: f64,
    /// Number of fatal events (UEs + over-temperature shutdowns).
    pub uncorrected_errors: usize,
    /// Fatal events per manufacturer (A, B, C).
    pub ue_by_manufacturer: (usize, usize, usize),
    /// Number of fatal events with no other event on the same node in the preceding 24 h.
    pub silent_ue_count: usize,
    /// Number of per-node per-minute merged events.
    pub merged_event_count: usize,
    /// Observation window length in days.
    pub window_days: f64,
}

impl LogStatistics {
    /// Compute the statistics of a log.
    pub fn compute(log: &ErrorLog) -> Self {
        let mut records_by_kind: BTreeMap<String, usize> = BTreeMap::new();
        let mut ce_by_dimm: HashMap<DimmId, u64> = HashMap::new();
        let mut total_ce: u64 = 0;
        let mut ue_by_manufacturer = (0usize, 0usize, 0usize);
        let mut fatal_events: Vec<(NodeId, SimTime)> = Vec::new();

        for event in log.events() {
            *records_by_kind
                .entry(event.kind.name().to_string())
                .or_insert(0) += 1;
            match &event.kind {
                EventKind::CorrectedError { count, detail } => {
                    total_ce += *count as u64;
                    if let Some(d) = detail {
                        *ce_by_dimm.entry(d.dimm).or_insert(0) += *count as u64;
                    }
                }
                EventKind::UncorrectedError { .. } | EventKind::OverTemperature => {
                    fatal_events.push((event.node, event.time));
                    match log.fleet().manufacturer_of(event.node) {
                        Some(Manufacturer::A) => ue_by_manufacturer.0 += 1,
                        Some(Manufacturer::B) => ue_by_manufacturer.1 += 1,
                        Some(Manufacturer::C) => ue_by_manufacturer.2 += 1,
                        None => {}
                    }
                }
                _ => {}
            }
        }

        let top_dimm_ce_share = if total_ce > 0 {
            ce_by_dimm.values().copied().max().unwrap_or(0) as f64 / total_ce as f64
        } else {
            0.0
        };

        // A fatal event is "silent" when the same node has no other event in the 24 hours
        // before it. Walk per-node event times once.
        let mut events_by_node: HashMap<NodeId, Vec<SimTime>> = HashMap::new();
        for event in log.events() {
            events_by_node
                .entry(event.node)
                .or_default()
                .push(event.time);
        }
        let silent_ue_count = fatal_events
            .iter()
            .filter(|(node, t)| {
                let times = &events_by_node[node];
                !times
                    .iter()
                    .any(|&other| other < *t && t.delta_secs(other) <= SimTime::DAY)
            })
            .count();

        Self {
            records_by_kind,
            total_corrected_errors: total_ce,
            dimms_with_ce: ce_by_dimm.len(),
            top_dimm_ce_share,
            uncorrected_errors: fatal_events.len(),
            ue_by_manufacturer,
            silent_ue_count,
            merged_event_count: log.merged_events().len(),
            window_days: log.window_days(),
        }
    }

    /// Fraction of fatal events that are silent (no preceding event within 24 h).
    pub fn silent_ue_fraction(&self) -> f64 {
        if self.uncorrected_errors == 0 {
            0.0
        } else {
            self.silent_ue_count as f64 / self.uncorrected_errors as f64
        }
    }

    /// Render the statistics as a human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("error-log statistics\n");
        out.push_str(&format!("  window: {:.1} days\n", self.window_days));
        for (kind, count) in &self.records_by_kind {
            out.push_str(&format!("  records[{kind}]: {count}\n"));
        }
        out.push_str(&format!(
            "  corrected errors: {} (on {} DIMMs, top DIMM share {:.1}%)\n",
            self.total_corrected_errors,
            self.dimms_with_ce,
            self.top_dimm_ce_share * 100.0
        ));
        out.push_str(&format!(
            "  fatal events: {} (A={}, B={}, C={}), silent within 24h: {} ({:.0}%)\n",
            self.uncorrected_errors,
            self.ue_by_manufacturer.0,
            self.ue_by_manufacturer.1,
            self.ue_by_manufacturer.2,
            self.silent_ue_count,
            self.silent_ue_fraction() * 100.0
        ));
        out.push_str(&format!(
            "  merged per-minute events: {}\n",
            self.merged_event_count
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{CeDetail, Detector, LogEvent};
    use crate::fleet::FleetConfig;
    use crate::generator::{SyntheticLogConfig, TraceGenerator};
    use crate::types::CellLocation;

    fn detailed_ce(node: u32, slot: u8, t: i64, count: u32) -> LogEvent {
        LogEvent::new(
            SimTime::from_secs(t),
            NodeId(node),
            EventKind::CorrectedError {
                count,
                detail: Some(CeDetail {
                    dimm: DimmId::new(NodeId(node), slot),
                    location: CellLocation::new(0, 0, 1, 1),
                    detector: Detector::DemandRead,
                }),
            },
        )
    }

    fn ue(node: u32, t: i64) -> LogEvent {
        LogEvent::new(
            SimTime::from_secs(t),
            NodeId(node),
            EventKind::UncorrectedError {
                dimm: DimmId::new(NodeId(node), 0),
                detector: Detector::DemandRead,
            },
        )
    }

    #[test]
    fn counts_and_concentration() {
        let fleet = FleetConfig::small(10);
        let log = ErrorLog::new(
            fleet,
            vec![
                detailed_ce(1, 0, 10, 90),
                detailed_ce(2, 1, 20, 10),
                ue(1, SimTime::DAY * 2),
            ],
            SimTime::ZERO,
            SimTime::from_days(10),
        );
        let s = LogStatistics::compute(&log);
        assert_eq!(s.total_corrected_errors, 100);
        assert_eq!(s.dimms_with_ce, 2);
        assert!((s.top_dimm_ce_share - 0.9).abs() < 1e-12);
        assert_eq!(s.uncorrected_errors, 1);
        assert_eq!(s.records_by_kind["CE"], 2);
        assert_eq!(s.records_by_kind["UE"], 1);
    }

    #[test]
    fn silent_ue_detection() {
        let fleet = FleetConfig::small(10);
        let day = SimTime::DAY;
        // Node 1: CE twelve hours before its UE -> not silent.
        // Node 2: UE with nothing before it -> silent.
        let log = ErrorLog::new(
            fleet,
            vec![detailed_ce(1, 0, day / 2, 1), ue(1, day), ue(2, 5 * day)],
            SimTime::ZERO,
            SimTime::from_days(10),
        );
        let s = LogStatistics::compute(&log);
        assert_eq!(s.uncorrected_errors, 2);
        assert_eq!(s.silent_ue_count, 1);
        assert!((s.silent_ue_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn manufacturer_attribution_follows_fleet() {
        let fleet = FleetConfig::small(30);
        let a = fleet.nodes_of(Manufacturer::A)[0];
        let c = fleet.nodes_of(Manufacturer::C)[0];
        let log = ErrorLog::new(
            fleet,
            vec![ue(a.0, 100), ue(c.0, 200), ue(c.0, SimTime::WEEK * 4)],
            SimTime::ZERO,
            SimTime::from_days(60),
        );
        let s = LogStatistics::compute(&log);
        assert_eq!(s.ue_by_manufacturer, (1, 0, 2));
    }

    #[test]
    fn report_mentions_key_numbers() {
        let log = TraceGenerator::new(SyntheticLogConfig::small(20, 30, 2)).generate();
        let s = LogStatistics::compute(&log);
        let report = s.report();
        assert!(report.contains("corrected errors"));
        assert!(report.contains("fatal events"));
        assert!(report.contains("merged per-minute events"));
    }

    #[test]
    fn synthetic_log_statistics_are_consistent() {
        let log = TraceGenerator::new(SyntheticLogConfig::small(40, 60, 3)).generate();
        let s = LogStatistics::compute(&log);
        assert_eq!(s.total_corrected_errors, log.total_corrected_errors());
        assert_eq!(s.uncorrected_errors, log.total_uncorrected_errors());
        assert!(s.merged_event_count <= log.len());
        assert!(s.top_dimm_ce_share > 0.0 && s.top_dimm_ce_share <= 1.0);
    }

    #[test]
    fn empty_log_statistics() {
        let log = ErrorLog::new(
            FleetConfig::small(3),
            vec![],
            SimTime::ZERO,
            SimTime::from_days(1),
        );
        let s = LogStatistics::compute(&log);
        assert_eq!(s.total_corrected_errors, 0);
        assert_eq!(s.uncorrected_errors, 0);
        assert_eq!(s.silent_ue_fraction(), 0.0);
        assert_eq!(s.top_dimm_ce_share, 0.0);
    }
}
