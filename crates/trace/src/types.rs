//! Core identifier and time types shared across the error-log substrate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a compute node within the monitored fleet.
///
/// MareNostrum 3 had 3056 compute nodes; node ids are dense indices `0..node_count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{:04}", self.0)
    }
}

/// Identifier of a DIMM: the node it is installed in plus its slot on that node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DimmId {
    /// Node hosting the DIMM.
    pub node: NodeId,
    /// Slot index within the node (0-based).
    pub slot: u8,
}

impl DimmId {
    /// Construct a DIMM id.
    pub fn new(node: NodeId, slot: u8) -> Self {
        Self { node, slot }
    }
}

impl fmt::Display for DimmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/dimm-{}", self.node, self.slot)
    }
}

/// Anonymised DRAM manufacturer, as in the paper (Manufacturer A, B and C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Manufacturer {
    /// Manufacturer A (6694 DIMMs in MareNostrum 3).
    A,
    /// Manufacturer B (5207 DIMMs).
    B,
    /// Manufacturer C (13,419 DIMMs).
    C,
}

impl Manufacturer {
    /// All manufacturers, in declaration order.
    pub const ALL: [Manufacturer; 3] = [Manufacturer::A, Manufacturer::B, Manufacturer::C];

    /// Single-letter label used in reports and the mcelog-style format.
    pub fn label(self) -> &'static str {
        match self {
            Manufacturer::A => "A",
            Manufacturer::B => "B",
            Manufacturer::C => "C",
        }
    }

    /// Parse a single-letter label.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "A" => Some(Manufacturer::A),
            "B" => Some(Manufacturer::B),
            "C" => Some(Manufacturer::C),
            _ => None,
        }
    }
}

impl fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Physical location of a DRAM cell within a DIMM: rank, bank, row and column.
///
/// The production logs record this via the address-to-location mapping obtained from the
/// memory manufacturer; here it is part of the synthetic fault model. The feature
/// extractor counts the number of distinct ranks/banks/rows/columns with CEs (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellLocation {
    /// DIMM rank (0–3 on DDR3 RDIMMs).
    pub rank: u8,
    /// Bank within the rank (0–7 on DDR3).
    pub bank: u8,
    /// Row address.
    pub row: u32,
    /// Column address.
    pub column: u32,
}

impl CellLocation {
    /// Construct a cell location.
    pub fn new(rank: u8, bank: u8, row: u32, column: u32) -> Self {
        Self {
            rank,
            bank,
            row,
            column,
        }
    }
}

/// A point in simulated time, stored as whole seconds since the start of the observation
/// window (for the MareNostrum 3 logs, 1 October 2014 00:00 UTC).
///
/// Seconds granularity matches the production pipeline: the monitoring daemon polls the
/// MCA registers every 100 ms but the environment merges events per minute, so nothing in
/// the reproduction needs sub-second resolution for logged events.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub i64);

impl SimTime {
    /// One minute in seconds.
    pub const MINUTE: i64 = 60;
    /// One hour in seconds.
    pub const HOUR: i64 = 3600;
    /// One day in seconds.
    pub const DAY: i64 = 86_400;
    /// One week in seconds.
    pub const WEEK: i64 = 7 * Self::DAY;
    /// One 365-day year in seconds.
    pub const YEAR: i64 = 365 * Self::DAY;

    /// The origin of the observation window.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: i64) -> Self {
        SimTime(secs)
    }

    /// Construct from whole minutes.
    pub fn from_minutes(minutes: i64) -> Self {
        SimTime(minutes * Self::MINUTE)
    }

    /// Construct from whole hours.
    pub fn from_hours(hours: i64) -> Self {
        SimTime(hours * Self::HOUR)
    }

    /// Construct from whole days.
    pub fn from_days(days: i64) -> Self {
        SimTime(days * Self::DAY)
    }

    /// Seconds since the window origin.
    pub fn as_secs(self) -> i64 {
        self.0
    }

    /// Time expressed in (possibly fractional) hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / Self::HOUR as f64
    }

    /// Time expressed in (possibly fractional) days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / Self::DAY as f64
    }

    /// Add a number of seconds.
    pub fn plus_secs(self, secs: i64) -> Self {
        SimTime(self.0 + secs)
    }

    /// Difference `self - other` in seconds.
    pub fn delta_secs(self, other: SimTime) -> i64 {
        self.0 - other.0
    }

    /// Difference `self - other` in fractional hours.
    pub fn delta_hours(self, other: SimTime) -> f64 {
        self.delta_secs(other) as f64 / Self::HOUR as f64
    }

    /// The start of the minute containing this instant (events are merged per minute).
    pub fn floor_minute(self) -> Self {
        SimTime(self.0.div_euclid(Self::MINUTE) * Self::MINUTE)
    }

    /// Saturating maximum of two instants.
    pub fn max(self, other: SimTime) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating minimum of two instants.
    pub fn min(self, other: SimTime) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl std::ops::Add<i64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: i64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl std::ops::Sub<SimTime> for SimTime {
    type Output = i64;

    fn sub(self, rhs: SimTime) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let days = total.div_euclid(Self::DAY);
        let rem = total.rem_euclid(Self::DAY);
        let hours = rem / Self::HOUR;
        let minutes = (rem % Self::HOUR) / Self::MINUTE;
        let seconds = rem % Self::MINUTE;
        write!(f, "d{days:03}+{hours:02}:{minutes:02}:{seconds:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_dimm_display() {
        let n = NodeId(17);
        assert_eq!(n.to_string(), "node-0017");
        assert_eq!(n.index(), 17);
        let d = DimmId::new(n, 3);
        assert_eq!(d.to_string(), "node-0017/dimm-3");
    }

    #[test]
    fn manufacturer_labels_round_trip() {
        for m in Manufacturer::ALL {
            assert_eq!(Manufacturer::from_label(m.label()), Some(m));
        }
        assert_eq!(Manufacturer::from_label("X"), None);
    }

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_minutes(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(1), SimTime::from_minutes(60));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimTime::WEEK, 7 * SimTime::DAY);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_hours(5);
        let b = SimTime::from_hours(2);
        assert_eq!(a - b, 3 * SimTime::HOUR);
        assert_eq!(a.delta_hours(b), 3.0);
        assert_eq!(a.plus_secs(30).as_secs(), 5 * SimTime::HOUR + 30);
        assert_eq!((a + 60).as_secs(), 5 * SimTime::HOUR + 60);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn simtime_minute_flooring() {
        let t = SimTime::from_secs(3 * 60 + 42);
        assert_eq!(t.floor_minute(), SimTime::from_minutes(3));
        // Negative times (before the window origin) still floor downwards.
        let neg = SimTime::from_secs(-61);
        assert_eq!(neg.floor_minute(), SimTime::from_secs(-120));
    }

    #[test]
    fn simtime_display_format() {
        let t = SimTime::from_days(12) + 3 * SimTime::HOUR + 4 * SimTime::MINUTE + 5;
        assert_eq!(t.to_string(), "d012+03:04:05");
    }

    #[test]
    fn simtime_unit_conversions() {
        let t = SimTime::from_hours(36);
        assert!((t.as_days() - 1.5).abs() < 1e-12);
        assert!((t.as_hours() - 36.0).abs() < 1e-12);
    }
}
