//! Checkpoint-scheduler scenario: an HPC operator wants to know whether adaptive
//! mitigation still pays off when the mitigation action is expensive.
//!
//! The paper's primary evaluation assumes a 2 node-minute action (live migration or node
//! cloning); sites that rely on full application checkpoints report 5–10 node-minutes or
//! more. This example sweeps the mitigation cost and prints, for each setting, the total
//! lost node-hours of the static policies, the SC20-RF baseline and the RL agent — the
//! Figure 3 experiment on a small synthetic system.
//!
//! Run with: `cargo run --release --example checkpoint_scheduler`

use uerl::eval::experiments::fig3;
use uerl::eval::scenario::{EvalBudget, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::synthetic_small(50, 120, EvalBudget::tiny(), 11);
    println!(
        "scenario {}: {} nodes with events, {} effective UEs",
        ctx.label,
        ctx.timelines.len(),
        ctx.timelines.total_fatal()
    );

    let result = fig3::run(&ctx, &[2.0, 5.0, 10.0]);
    println!("{}", result.render());

    for cost in [2.0, 5.0, 10.0] {
        let never = result.row("Never-mitigate", cost).unwrap().total_cost();
        let always = result.row("Always-mitigate", cost).unwrap().total_cost();
        let rl = result.row("RL", cost).unwrap().total_cost();
        let best_static = never.min(always);
        println!(
            "mitigation cost {cost:>4} node-min: RL {} node-hours vs best static {} ({})",
            rl.round(),
            best_static.round(),
            if rl <= best_static {
                "adaptive mitigation wins"
            } else {
                "static policy wins at this training budget"
            }
        );
    }
}
