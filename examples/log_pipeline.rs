//! Log pipeline: how a site would feed its own monitoring data into the library.
//!
//! The library consumes two plain-text formats modelled on the production tooling the
//! paper used: an mcelog-style error log and a `sacct`-style job log. This example
//! round-trips both (generate → serialise → parse), applies the paper's preprocessing
//! (DIMM-retirement-bias filtering and UE burst reduction) and prints the quantitative
//! log statistics of Section 2.
//!
//! Run with: `cargo run --release --example log_pipeline`

use uerl::jobs::{sacct, JobLogConfig, JobTraceGenerator};
use uerl::trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl::trace::mcelog;
use uerl::trace::reduction::{filter_retirement_bias, reduce_ue_bursts};
use uerl::trace::stats::LogStatistics;

fn main() {
    // A site would read these from disk; here we synthesise and round-trip them to show
    // both directions of the I/O path.
    let error_log = TraceGenerator::new(SyntheticLogConfig::small(80, 180, 17)).generate();
    let job_log = JobTraceGenerator::new(JobLogConfig::small(128, 90, 17)).generate();

    let error_text = mcelog::to_text(&error_log);
    let job_text = sacct::to_text(&job_log);
    println!(
        "serialised {} error-log lines and {} sacct lines",
        error_text.lines().count(),
        job_text.lines().count()
    );

    let parsed_errors =
        mcelog::from_text(&error_text, error_log.fleet().clone()).expect("error log parses");
    let parsed_jobs = sacct::from_text(&job_text).expect("job log parses");
    assert_eq!(parsed_errors.events(), error_log.events());
    assert_eq!(parsed_jobs.records(), job_log.records());
    println!("round-trip verified: parsed logs are identical to the originals");

    println!(
        "\n--- raw log ---\n{}",
        LogStatistics::compute(&parsed_errors).report()
    );

    let filtered = filter_retirement_bias(&parsed_errors);
    let reduced = reduce_ue_bursts(&filtered);
    println!(
        "--- after retirement filtering + UE burst reduction ---\n{}",
        LogStatistics::compute(&reduced).report()
    );

    println!(
        "job log: {} jobs, utilisation {:.1}%, largest job {:.0} node-hours",
        parsed_jobs.len(),
        parsed_jobs.utilization() * 100.0,
        parsed_jobs.max_job_node_hours()
    );
}
