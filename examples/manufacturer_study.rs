//! Manufacturer study: does the method generalise across DRAM vendors?
//!
//! MareNostrum 3 mixed DIMMs from three manufacturers with very different error
//! behaviour; Section 5.3 of the paper trains and evaluates the method separately per
//! manufacturer (MN/A, MN/B, MN/C) and compares against training on the whole system
//! (MN/All) and the sum of the three subsystems (MN/ABC). This example reproduces that
//! experiment on a small synthetic fleet and prints the Figure 5 table.
//!
//! Run with: `cargo run --release --example manufacturer_study`

use uerl::eval::experiments::fig5;
use uerl::eval::scenario::{EvalBudget, ExperimentContext};
use uerl::trace::types::Manufacturer;

fn main() {
    let ctx = ExperimentContext::synthetic_small(48, 120, EvalBudget::tiny(), 13);
    for m in Manufacturer::ALL {
        let sub = ctx.restricted_to_manufacturer(m);
        println!(
            "{}: {} nodes with events, {} effective UEs",
            sub.label,
            sub.timelines.len(),
            sub.timelines.total_fatal()
        );
    }

    let result = fig5::run(&ctx);
    println!("{}", result.render());

    // Headline: the RL agent should stay competitive in every partition where the static
    // baselines have room to lose node-hours.
    for scenario in ["MN/All", "MN/A", "MN/B", "MN/C", "MN/ABC"] {
        if let (Some(never), Some(rl)) = (
            result.row(scenario, "Never-mitigate"),
            result.row(scenario, "RL"),
        ) {
            let saved = never.total_cost() - rl.total_cost();
            println!(
                "{scenario}: RL saves {:.0} node-hours relative to Never-mitigate",
                saved
            );
        }
    }
}
