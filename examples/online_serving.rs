//! Online serving quickstart: train a tiny mitigation agent, then run it as a live
//! fleet service and verify the served decisions against the offline evaluator.
//!
//! ```sh
//! cargo run --release --example online_serving
//! ```
//!
//! The pipeline mirrors a real deployment: historical logs train the agent offline;
//! the trained network is then compacted to its inference footprint and mounted in a
//! [`FleetServer`], which ingests the fleet's merged event-time stream and answers
//! every error-log event with a mitigate / don't-mitigate decision — micro-batching
//! the decision requests that share an event-time tick into single forward passes.
//! Because the serving path is bit-identical to the offline evaluator, the example
//! closes by replaying the same period through `run_policy` and asserting that every
//! decision and every accumulated cost matches exactly.
//!
//! The example also turns the observability layer on: baseline policies ride along as
//! **shadow policies** (scored counterfactually on the identical stream, never
//! touching a served decision), and the run ends with the metrics snapshot as JSON —
//! what a scrape of a real deployment would return.

use std::sync::Arc;
use std::time::Instant;
use uerl::core::event_stream::TimelineSet;
use uerl::core::policies::{AlwaysMitigate, NeverMitigate, RlPolicy};
use uerl::core::trainer::{RlTrainer, TrainerConfig};
use uerl::core::MitigationConfig;
use uerl::eval::run::run_policy;
use uerl::jobs::{JobLogConfig, JobTraceGenerator, NodeJobSampler};
use uerl::serve::{merged_fleet_stream, FleetServer, ServeConfig, ShadowPolicy};
use uerl::trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl::trace::reduction::preprocess;

fn main() {
    let seed = 42u64;
    let mitigation = MitigationConfig::paper_default();
    uerl::obs::set_enabled(true); // observe this run regardless of UERL_METRICS

    // --- Offline: synthesize a fleet and train a small agent -------------------------
    let log = TraceGenerator::new(SyntheticLogConfig::small(60, 120, seed)).generate();
    let timelines = TimelineSet::from_log(&preprocess(&log));
    let jobs = JobTraceGenerator::new(JobLogConfig::small(128, 60, seed)).generate();
    let sampler = NodeJobSampler::from_log(&jobs);
    println!(
        "fleet: {} nodes with events, {} merged events ({} fatal)",
        timelines.len(),
        timelines.total_events(),
        timelines.total_fatal()
    );

    let trainer = RlTrainer::new(TrainerConfig::reduced(60).with_seed(seed));
    let outcome = trainer.train(&timelines, &sampler);
    println!(
        "trained: {} episodes, {} env steps, mean return {:.2}",
        outcome.episodes, outcome.total_steps, outcome.mean_episode_return
    );
    let mut agent = outcome.agent;
    agent.compact_for_inference(); // serving only needs the network
    let policy = RlPolicy::new(agent);

    // --- Online: mount the agent in a fleet server and stream the events -------------
    let config = ServeConfig::for_timelines(&timelines, mitigation, seed)
        .with_batch_size(32)
        .with_shards(8);
    let mut server = FleetServer::new(config, policy.clone(), sampler.clone())
        .with_shadow_policies(vec![
            Arc::new(AlwaysMitigate) as ShadowPolicy,
            Arc::new(NeverMitigate) as ShadowPolicy,
        ]);

    let stream = merged_fleet_stream(&timelines);
    let events = stream.len();
    let mut decisions = Vec::new();
    let t0 = Instant::now();
    server
        .ingest_all(stream, &mut decisions)
        .expect("merged stream is time-ordered");
    let secs = t0.elapsed().as_secs_f64();

    let report = server.report();
    println!(
        "served: {events} events -> {} decisions in {:.3}s ({:.0} events/sec)",
        decisions.len(),
        secs,
        events as f64 / secs.max(1e-9)
    );
    println!(
        "        {} mitigations ordered, {} UEs accounted, total cost {:.2} node-hours",
        report.mitigations,
        report.ue_count,
        report.total_cost()
    );
    for d in decisions.iter().filter(|d| d.mitigated).take(3) {
        println!(
            "        e.g. mitigate node {} at t={:.1}h",
            d.node.0,
            d.time.0 as f64 / 3600.0
        );
    }

    // --- Parity: the online service must equal the offline evaluator, to the bit -----
    let offline = run_policy(&policy, &timelines, &sampler, mitigation, seed);
    assert_eq!(report.mitigations, offline.mitigations);
    assert_eq!(report.ue_count, offline.ue_count);
    assert_eq!(
        report.mitigation_cost.to_bits(),
        offline.mitigation_cost.to_bits()
    );
    assert_eq!(report.ue_cost.to_bits(), offline.ue_cost.to_bits());
    println!("parity:  served decisions and costs are bit-identical to the offline evaluator");

    // --- Observability: shadow scores and the metrics snapshot -----------------------
    println!("\nshadow scoreboard (counterfactual, same stream):");
    println!(
        "        {:<18} {:>12} {:>10} {:>16}",
        "policy", "mitigations", "UEs", "total node-hours"
    );
    println!(
        "        {:<18} {:>12} {:>10} {:>16.2}   (served)",
        report.policy,
        report.mitigations,
        report.ue_count,
        report.total_cost()
    );
    for score in server.shadow_report() {
        println!(
            "        {:<18} {:>12} {:>10} {:>16.2}",
            score.policy,
            score.mitigations,
            score.ue_count,
            score.total_cost()
        );
    }

    let snapshot = uerl::obs::registry().snapshot();
    println!(
        "\nmetrics snapshot (fingerprint {:#018x}):",
        snapshot.fingerprint()
    );
    println!("{}", snapshot.to_json());
}
