//! Quickstart: the smallest end-to-end use of the library.
//!
//! 1. Reconstruct a (small) MareNostrum-style error log and a Slurm-style job log.
//! 2. Preprocess the error log (retirement-bias filtering + UE burst reduction).
//! 3. Train the RL mitigation agent on the first half of the data.
//! 4. Compare it against Never-mitigate, Always-mitigate and the Oracle on the second
//!    half, using the paper's cost-benefit accounting.
//!
//! Run with: `cargo run --release --example quickstart`

use uerl::core::event_stream::TimelineSet;
use uerl::core::policies::{AlwaysMitigate, NeverMitigate, OraclePolicy};
use uerl::core::trainer::{RlTrainer, TrainerConfig};
use uerl::core::MitigationConfig;
use uerl::eval::report::{format_table, node_hours, percent};
use uerl::eval::run::run_policy;
use uerl::jobs::schedule::NodeJobSampler;
use uerl::jobs::{JobLogConfig, JobTraceGenerator};
use uerl::trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl::trace::reduction::preprocess;
use uerl::trace::types::SimTime;

fn main() {
    // 1. Substrates: a 60-node fleet over 120 days plus a job log.
    let error_log = TraceGenerator::new(SyntheticLogConfig::small(60, 120, 7)).generate();
    let job_log = JobTraceGenerator::new(JobLogConfig::small(128, 60, 7)).generate();
    println!(
        "generated {} error-log records ({} corrected errors, {} fatal events) and {} jobs",
        error_log.len(),
        error_log.total_corrected_errors(),
        error_log.total_uncorrected_errors(),
        job_log.len()
    );

    // 2. Preprocess exactly as the paper does.
    let preprocessed = preprocess(&error_log);
    let timelines = TimelineSet::from_log(&preprocessed);
    let sampler = NodeJobSampler::from_log(&job_log);
    println!(
        "after preprocessing: {} effective UEs across {} nodes with events",
        timelines.total_fatal(),
        timelines.len()
    );

    // 3. Train the agent on the first half of the window.
    let midpoint = SimTime::from_secs(
        (timelines.window_start().as_secs() + timelines.window_end().as_secs()) / 2,
    );
    let train = timelines.slice(timelines.window_start(), midpoint);
    let test = timelines.slice(midpoint, timelines.window_end());
    let trainer = RlTrainer::new(TrainerConfig::reduced(150).with_seed(7));
    let outcome = trainer.train(&train, &sampler);
    println!(
        "trained the RL agent: {} episodes, {} decisions, {:.1} s wall clock",
        outcome.episodes, outcome.total_steps, outcome.wall_time_secs
    );
    let rl = outcome.into_policy();

    // 4. Cost-benefit comparison on the held-out half.
    let config = MitigationConfig::paper_default();
    let oracle = OraclePolicy::from_timelines(&test);
    let runs = [
        run_policy(&NeverMitigate, &test, &sampler, config, 7),
        run_policy(&AlwaysMitigate, &test, &sampler, config, 7),
        run_policy(&rl, &test, &sampler, config, 7),
        run_policy(&oracle, &test, &sampler, config, 7),
    ];
    let never_cost = runs[0].total_cost();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.mitigations.to_string(),
                node_hours(r.ue_cost),
                node_hours(r.mitigation_cost),
                node_hours(r.total_cost()),
                percent(1.0 - r.total_cost() / never_cost.max(1e-9)),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "policy",
                "mitigations",
                "UE cost (nh)",
                "mitigation (nh)",
                "total (nh)",
                "saved vs Never"
            ],
            &rows
        )
    );
}
