//! # uerl
//!
//! Facade crate for the UERL workspace: a Rust reproduction of
//! *"Reinforcement Learning-based Adaptive Mitigation of Uncorrected DRAM Errors in the
//! Field"* (Boixaderas et al., HPDC 2024).
//!
//! The workspace is organised as one crate per subsystem; this crate simply re-exports
//! them under stable module names so applications can depend on a single crate:
//!
//! * [`trace`] — MareNostrum-style error-log substrate (fleet, fault processes, synthetic
//!   log generation, mcelog-style I/O, burst reduction).
//! * [`jobs`] — Slurm-style job-log substrate (workload generation, sacct I/O, node job
//!   sequence sampling).
//! * [`nn`] — dense neural-network substrate (MLP, dueling heads, optimizers).
//! * [`rl`] — deep reinforcement-learning substrate (replay, prioritized experience
//!   replay, dueling double deep Q-network agents).
//! * [`forest`] — random-forest baseline substrate (CART trees, bagging, under-sampling).
//! * [`core`] — the paper's contribution: the MDP formulation of adaptive UE mitigation,
//!   the environment over historical logs, the mitigation policies and the RL trainer.
//! * [`eval`] — evaluation harness: time-series nested cross-validation, cost–benefit
//!   analysis, classical ML metrics and drivers for every figure and table of the paper.
//! * [`serve`] — online fleet-serving subsystem: a long-running mitigation service with
//!   sharded per-node incremental state and micro-batched DQN inference, bit-identical
//!   to the offline evaluator on the same timelines.
//! * [`obs`] — observability substrate: the metrics registry, span timers and the
//!   unified `UERL_*` knob parser, runtime-gated by `UERL_METRICS` and provably inert
//!   with respect to decisions and costs.

pub use uerl_core as core;
pub use uerl_eval as eval;
pub use uerl_forest as forest;
pub use uerl_jobs as jobs;
pub use uerl_nn as nn;
pub use uerl_obs as obs;
pub use uerl_rl as rl;
pub use uerl_serve as serve;
pub use uerl_stats as stats;
pub use uerl_trace as trace;
