//! Thread-count determinism: every parallel fan-out in the engine (forest fitting,
//! per-node rollouts, per-policy and per-split evaluation, figure drivers) must produce
//! **bit-identical** results whether it runs on one thread or many — including under
//! the persistent work-stealing pool, where *which worker* runs a chunk is a race but
//! results are always reduced in input-index order.
//!
//! The tests pin the thread count with `rayon::ThreadPool::install`, which is the same
//! mechanism the `RAYON_NUM_THREADS` environment variable feeds; running the whole
//! suite under `RAYON_NUM_THREADS=1` therefore exercises the same single-thread path,
//! and CI re-runs it under `RAYON_NUM_THREADS=4` to exercise actual stealing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uerl::core::policies::RlPolicy;
use uerl::core::state::STATE_DIM;
use uerl::eval::evaluator::{dqn_candidate_evaluator, rl_hyper_search, Evaluator, RlSearch};
use uerl::eval::experiments::fig3;
use uerl::eval::scenario::{EvalBudget, ExperimentContext};
use uerl::forest::{Dataset, RandomForest, RandomForestConfig};
use uerl::rl::{HyperSearch, SearchOutcome};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
}

/// An imbalanced but learnable dataset, the shape the SC20-RF baseline sees.
fn rf_dataset(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(99);
    let mut d = Dataset::new();
    for _ in 0..n {
        let x0: f64 = rng.gen();
        let x1: f64 = rng.gen();
        let x2: f64 = rng.gen();
        let positive = x0 + x1 > 1.5;
        if !positive || rng.gen::<f64>() < 0.4 {
            d.push(vec![x0, x1, x2], positive);
        }
    }
    d
}

#[test]
fn forest_fit_is_bit_identical_across_thread_counts() {
    let data = rf_dataset(1500);
    let config = RandomForestConfig::sc20(3, 4242);
    let serial = pool(1).install(|| RandomForest::fit(&data, &config));
    let two = pool(2).install(|| RandomForest::fit(&data, &config));
    let eight = pool(8).install(|| RandomForest::fit(&data, &config));
    // `RandomForest` derives `PartialEq` over every fitted tree, so this compares the
    // full structure, not just a probe prediction.
    assert_eq!(serial, two);
    assert_eq!(serial, eight);
}

#[test]
fn full_evaluation_is_bit_identical_across_thread_counts() {
    let ctx = ExperimentContext::synthetic_small(30, 75, EvalBudget::tiny(), 1234);
    let serial = pool(1).install(|| Evaluator::new().evaluate(&ctx));
    let parallel = pool(4).install(|| Evaluator::new().evaluate(&ctx));
    assert_eq!(serial.totals, parallel.totals);
    assert_eq!(serial.per_split.len(), parallel.per_split.len());
    for (a, b) in serial.per_split.iter().zip(&parallel.per_split) {
        assert_eq!(
            a.runs, b.runs,
            "split {:?} diverged across thread counts",
            a.split
        );
    }
}

#[test]
fn figure3_smoke_output_is_byte_identical_across_thread_counts() {
    let ctx = ExperimentContext::synthetic_small(25, 60, EvalBudget::tiny(), 77);
    let serial = pool(1).install(|| fig3::run(&ctx, &[2.0, 5.0]).render());
    let parallel = pool(4).install(|| fig3::run(&ctx, &[2.0, 5.0]).render());
    assert_eq!(
        serial, parallel,
        "rendered figure must not depend on the thread count"
    );
    assert!(serial.contains("Figure 3"));
}

/// The two-round hyperparameter search with the production DQN candidate-evaluation
/// closure ([`dqn_candidate_evaluator`]), at a fixed thread count. This is exactly what
/// the evaluator's RL stage runs per split.
fn run_hyper_search(ctx: &ExperimentContext, threads: usize) -> SearchOutcome<RlPolicy> {
    let sampler = ctx.job_sampler(1.0);
    let seed = 4711u64;
    let search = HyperSearch::reduced(4, 2);
    pool(threads).install(|| {
        let mut rng = StdRng::seed_from_u64(seed);
        search.run_parallel(
            &mut rng,
            dqn_candidate_evaluator(
                &ctx.timelines,
                &ctx.timelines,
                &sampler,
                ctx.mitigation,
                seed,
                6,
            ),
        )
    })
}

#[test]
fn parallel_hyper_search_is_bit_identical_across_thread_counts() {
    let ctx = ExperimentContext::synthetic_small(18, 50, EvalBudget::tiny(), 2026);
    let one = run_hyper_search(&ctx, 1);
    let four = run_hyper_search(&ctx, 4);

    // Same winner, same score, same search cost — to the bit.
    assert_eq!(one.best_index, four.best_index);
    assert_eq!(one.best_params, four.best_params);
    assert_eq!(one.best_score.to_bits(), four.best_score.to_bits());
    assert_eq!(one.total_cost.to_bits(), four.total_cost.to_bits());
    assert_eq!(one.candidates, four.candidates, "candidate traces diverged");

    // Same trained network: the winning policy's Q-values agree bit-for-bit on a
    // grid of probe states.
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..16 {
        let probe: Vec<f64> = (0..STATE_DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let qa = one.best.agent().q_values(&probe);
        let qb = four.best.agent().q_values(&probe);
        assert_eq!(qa.len(), qb.len());
        for (a, b) in qa.iter().zip(&qb) {
            assert_eq!(a.to_bits(), b.to_bits(), "Q-values diverged: {a} vs {b}");
        }
    }
}

/// The production RL search exactly as the evaluator runs it per split — halving or
/// exhaustive, whichever the budget (and the `UERL_HYPER_SEARCH` override CI uses to
/// exercise both) resolves to — at a fixed thread count.
fn run_production_search(ctx: &ExperimentContext, threads: usize) -> RlSearch {
    let sampler = ctx.job_sampler(1.0);
    let window = ctx.timelines.window_end() - ctx.timelines.window_start();
    let mid = ctx
        .timelines
        .window_start()
        .plus_secs((window as f64 * 0.7) as i64);
    let train_tl = ctx.timelines.slice(ctx.timelines.window_start(), mid);
    let validate_tl = ctx.timelines.slice(mid, ctx.timelines.window_end());
    pool(threads)
        .install(|| rl_hyper_search(ctx, &train_tl, &validate_tl, &sampler, ctx.mitigation, 8123))
}

#[test]
fn halving_search_is_bit_identical_across_thread_counts() {
    // Enough candidates for several elimination rungs in both rounds.
    let mut budget = EvalBudget::tiny().with_halving(true);
    budget.rl_episodes = 6;
    budget.hyper_initial = 6;
    budget.hyper_refined = 3;
    let ctx = ExperimentContext::synthetic_small(18, 50, budget, 2027);

    let one = run_production_search(&ctx, 1);
    let four = run_production_search(&ctx, 4);
    assert_eq!(one.halving, four.halving);

    // Winner, full candidate trace and charged search cost — to the bit.
    assert_eq!(one.outcome.best_index, four.outcome.best_index);
    assert_eq!(one.outcome.best_params, four.outcome.best_params);
    assert_eq!(
        one.outcome.best_score.to_bits(),
        four.outcome.best_score.to_bits()
    );
    assert_eq!(
        one.outcome.total_cost.to_bits(),
        four.outcome.total_cost.to_bits()
    );
    assert_eq!(one.outcome.candidates, four.outcome.candidates);

    // The survivor sets of every rung (and their per-rung scores and charged costs)
    // must agree exactly: which candidates were eliminated when is part of the
    // deterministic contract, not just the final winner.
    assert_eq!(one.rungs.len(), four.rungs.len());
    for (a, b) in one.rungs.iter().zip(&four.rungs) {
        assert_eq!(
            a.survivors, b.survivors,
            "rung {} survivors diverged",
            a.rung
        );
        assert_eq!(a.budget, b.budget);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.to_bits(), y.to_bits(), "rung {} scores diverged", a.rung);
        }
        for (x, y) in a.costs.iter().zip(&b.costs) {
            assert_eq!(x.to_bits(), y.to_bits(), "rung {} costs diverged", a.rung);
        }
    }

    // Same winning network, bit for bit.
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..16 {
        let probe: Vec<f64> = (0..STATE_DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for (a, b) in one
            .outcome
            .best
            .agent()
            .q_values(&probe)
            .iter()
            .zip(four.outcome.best.agent().q_values(&probe))
        {
            assert_eq!(a.to_bits(), b.to_bits(), "Q-values diverged: {a} vs {b}");
        }
    }
}

#[test]
fn work_stealing_pool_is_reused_not_respawned() {
    // Prime the pool with a real engine workload, then run every kind of parallel call
    // the engine makes (flat fan-out, nested join recursion, install overrides): the
    // worker-spawn counter must not move — parallel calls after pool init spawn zero
    // new OS threads, whatever the nesting.
    let data = rf_dataset(400);
    let config = RandomForestConfig::small(7);
    let _ = RandomForest::fit(&data, &config);
    let spawned_after_init = rayon::pool_worker_threads_spawned();
    assert_eq!(
        spawned_after_init,
        rayon::pool_size(),
        "every spawned worker belongs to the sized pool"
    );
    for round in 0..8 {
        let _ = RandomForest::fit(&data, &config);
        let _ = pool(4).install(|| RandomForest::fit(&data, &config));
        let (a, b) = rayon::join(|| round * 2, || round * 3);
        assert_eq!(a + b, round * 5);
    }
    assert_eq!(
        rayon::pool_worker_threads_spawned(),
        spawned_after_init,
        "parallel calls after pool init must spawn zero new OS threads"
    );
}

#[test]
fn join_based_forest_recursion_is_bit_identical_under_stealing() {
    // The forest fans out through recursive `rayon::join` halving (not flat chunks);
    // under work stealing the halves land on arbitrary workers, so this pins that the
    // assembled forest is still bit-identical between the serial path and a stealing
    // pool, and stable across repeated stolen executions.
    let data = rf_dataset(1200);
    let config = RandomForestConfig::sc20(3, 99);
    let serial = pool(1).install(|| RandomForest::fit(&data, &config));
    for _ in 0..3 {
        let stolen = pool(4).install(|| RandomForest::fit(&data, &config));
        assert_eq!(serial, stolen, "stealing changed the fitted forest");
    }
}

#[test]
fn sequential_evaluator_mode_matches_parallel_mode_exactly() {
    // Beyond thread counts: the evaluator's explicit `.sequential()` escape hatch must
    // agree bit-for-bit with the rayon path.
    let ctx = ExperimentContext::synthetic_small(25, 60, EvalBudget::tiny(), 555);
    let par = Evaluator::new().evaluate(&ctx);
    let seq = Evaluator::new().sequential().evaluate(&ctx);
    assert_eq!(par.totals, seq.totals);
}
