//! End-to-end integration test: from synthetic log generation through preprocessing,
//! baseline and RL training, to the full cost-benefit evaluation — exercising every crate
//! of the workspace through the `uerl` facade.

use uerl::eval::evaluator::{Evaluator, POLICY_ORDER};
use uerl::eval::scenario::{EvalBudget, ExperimentContext};

#[test]
fn full_pipeline_reproduces_the_papers_cost_ordering() {
    let ctx = ExperimentContext::synthetic_small(32, 75, EvalBudget::tiny(), 2024);
    let result = Evaluator::new().evaluate(&ctx);

    // All eight policies of Section 4.2 are evaluated on every split.
    assert_eq!(result.totals.len(), POLICY_ORDER.len());
    assert_eq!(result.per_split.len(), EvalBudget::tiny().cv_parts);

    let never = result.total_cost_of("Never-mitigate");
    let always = result.total_cost_of("Always-mitigate");
    let sc20 = result.total_cost_of("SC20-RF");
    let rl = result.total_cost_of("RL");
    let oracle = result.total_cost_of("Oracle");

    // Shape assertions that mirror the paper's qualitative findings and hold even with a
    // deliberately tiny training budget:
    assert!(never > 0.0, "doing nothing must lose node-hours");
    assert!(
        oracle <= never && oracle <= always && oracle <= sc20 && oracle <= rl + 1e-9,
        "the Oracle bounds every other policy"
    );
    assert!(
        sc20 <= never.max(always) + 1e-9,
        "a cost-optimal threshold cannot lose to both static baselines"
    );

    // Every policy accounts the same uncorrected errors.
    let ue_counts: Vec<u64> = result.totals.iter().map(|r| r.ue_count).collect();
    assert!(ue_counts.iter().all(|&c| c == ue_counts[0]));
    assert!(ue_counts[0] > 0);

    // Never-mitigate's cost is pure UE cost; Always-mitigate pays per decision.
    let never_run = result.total_for("Never-mitigate").unwrap();
    assert_eq!(never_run.mitigations, 0);
    assert_eq!(never_run.mitigation_cost, 0.0);
    let always_run = result.total_for("Always-mitigate").unwrap();
    assert_eq!(always_run.mitigations, always_run.decisions.len() as u64);
}

#[test]
fn manufacturer_partitions_cover_the_whole_fleet() {
    let ctx = ExperimentContext::synthetic_small(33, 60, EvalBudget::tiny(), 77);
    let mut partition_nodes = 0usize;
    for m in uerl::trace::types::Manufacturer::ALL {
        let sub = ctx.restricted_to_manufacturer(m);
        partition_nodes += sub.error_log.fleet().node_count();
        // Every timeline in the partition belongs to the selected manufacturer.
        for t in sub.timelines.timelines() {
            assert_eq!(sub.error_log.fleet().manufacturer_of(t.node()), Some(m));
        }
    }
    assert_eq!(partition_nodes, ctx.error_log.fleet().node_count());
}

#[test]
fn larger_jobs_increase_unmitigated_cost_roughly_proportionally() {
    let ctx = ExperimentContext::synthetic_small(28, 60, EvalBudget::tiny(), 99);
    let base = Evaluator::new().sequential().evaluate(&ctx);
    let scaled = Evaluator::new()
        .sequential()
        .with_job_scaling(10.0)
        .evaluate(&ctx);
    let never_base = base.total_cost_of("Never-mitigate");
    let never_scaled = scaled.total_cost_of("Never-mitigate");
    let ratio = never_scaled / never_base;
    assert!(
        ratio > 4.0 && ratio < 25.0,
        "a 10x job-size scaling should scale the unmitigated cost roughly 10x (got {ratio:.1})"
    );
}
