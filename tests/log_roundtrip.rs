//! Integration and property tests of the log substrates: serialisation round-trips and
//! the invariants of the paper's preprocessing steps.

use proptest::prelude::*;
use uerl::jobs::{sacct, JobLogConfig, JobTraceGenerator};
use uerl::trace::events::{Detector, EventKind, LogEvent};
use uerl::trace::fleet::FleetConfig;
use uerl::trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl::trace::log::ErrorLog;
use uerl::trace::mcelog;
use uerl::trace::reduction::{filter_retirement_bias, preprocess, reduce_ue_bursts};
use uerl::trace::types::{DimmId, NodeId, SimTime};

#[test]
fn mcelog_and_sacct_round_trip_generated_logs() {
    let error_log = TraceGenerator::new(SyntheticLogConfig::small(30, 45, 5)).generate();
    let parsed = mcelog::from_text(&mcelog::to_text(&error_log), error_log.fleet().clone())
        .expect("mcelog parses");
    assert_eq!(parsed.events(), error_log.events());

    let job_log = JobTraceGenerator::new(JobLogConfig::small(32, 20, 5)).generate();
    let parsed_jobs = sacct::from_text(&sacct::to_text(&job_log)).expect("sacct parses");
    assert_eq!(parsed_jobs.records(), job_log.records());
}

#[test]
fn preprocessing_never_increases_counts() {
    let log = TraceGenerator::new(SyntheticLogConfig::small(40, 60, 9)).generate();
    let processed = preprocess(&log);
    assert!(processed.len() <= log.len());
    assert!(processed.total_uncorrected_errors() <= log.total_uncorrected_errors());
    assert!(processed.total_corrected_errors() <= log.total_corrected_errors());
}

/// Strategy producing an arbitrary small event list on a 5-node fleet.
fn arbitrary_events() -> impl Strategy<Value = Vec<LogEvent>> {
    let event = (0u32..5, 0i64..(30 * SimTime::DAY), 0u8..4).prop_map(|(node, secs, kind)| {
        let node = NodeId(node);
        let time = SimTime::from_secs(secs);
        let kind = match kind {
            0 => EventKind::CorrectedError {
                count: 1 + (secs % 7) as u32,
                detail: None,
            },
            1 => EventKind::UncorrectedError {
                dimm: DimmId::new(node, 0),
                detector: Detector::DemandRead,
            },
            2 => EventKind::NodeBoot,
            _ => EventKind::DimmRetirement { slot: 1 },
        };
        LogEvent::new(time, node, kind)
    });
    proptest::collection::vec(event, 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ue_burst_reduction_is_idempotent_and_keeps_a_week_between_fatal_events(
        events in arbitrary_events()
    ) {
        let log = ErrorLog::new(
            FleetConfig::small(5),
            events,
            SimTime::ZERO,
            SimTime::from_days(31),
        );
        let reduced = reduce_ue_bursts(&log);
        // Idempotence.
        let twice = reduce_ue_bursts(&reduced);
        prop_assert_eq!(twice.events(), reduced.events());
        // No node keeps two fatal events within one week of each other.
        for node in reduced.nodes_with_events() {
            let fatal: Vec<_> = reduced
                .events_for_node(node)
                .filter(|e| e.is_fatal())
                .collect();
            for pair in fatal.windows(2) {
                prop_assert!(pair[1].time.delta_secs(pair[0].time) > SimTime::WEEK);
            }
        }
        // Non-fatal events are untouched.
        let non_fatal_before = log.events().iter().filter(|e| !e.is_fatal()).count();
        let non_fatal_after = reduced.events().iter().filter(|e| !e.is_fatal()).count();
        prop_assert_eq!(non_fatal_before, non_fatal_after);
    }

    #[test]
    fn retirement_filtering_removes_every_post_retirement_sample(
        events in arbitrary_events()
    ) {
        let log = ErrorLog::new(
            FleetConfig::small(5),
            events,
            SimTime::ZERO,
            SimTime::from_days(31),
        );
        let filtered = filter_retirement_bias(&log);
        // No retirement events remain, and for every node everything at or after its
        // first retirement is gone.
        for node in log.nodes_with_events() {
            let first_retirement = log
                .events_for_node(node)
                .filter(|e| matches!(e.kind, EventKind::DimmRetirement { .. }))
                .map(|e| e.time)
                .min();
            if let Some(cutoff) = first_retirement {
                for e in filtered.events_for_node(node) {
                    prop_assert!(e.time < cutoff);
                }
            }
        }
        prop_assert!(filtered.len() <= log.len());
    }

    #[test]
    fn mcelog_round_trip_holds_for_arbitrary_event_lists(events in arbitrary_events()) {
        let log = ErrorLog::new(
            FleetConfig::small(5),
            events,
            SimTime::ZERO,
            SimTime::from_days(31),
        );
        let parsed = mcelog::from_text(&mcelog::to_text(&log), log.fleet().clone()).unwrap();
        prop_assert_eq!(parsed.events(), log.events());
    }
}
