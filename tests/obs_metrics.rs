//! Exactness of the serving metrics: with the gate open, the event-time instruments
//! must count the served stream *exactly* (not approximately), be bit-identical
//! across thread counts, and record strictly nothing when the gate is closed.
//!
//! This suite lives in its own integration-test binary on purpose: the metrics
//! registry and the `UERL_METRICS` gate are process-global, so delta assertions are
//! only meaningful in a process whose gate this suite alone controls (the
//! `serving_parity` binary flips the gate too, and CI runs it under
//! `UERL_METRICS=on`). Within this process the tests serialize on a mutex.

use std::sync::{Arc, Mutex, MutexGuard};

use uerl::core::event_stream::TimelineSet;
use uerl::core::policies::{AlwaysMitigate, NeverMitigate};
use uerl::core::MitigationConfig;
use uerl::jobs::schedule::NodeJobSampler;
use uerl::jobs::{JobLogConfig, JobTraceGenerator};
use uerl::obs::{registry, set_enabled, MetricsSnapshot};
use uerl::serve::{merged_fleet_stream, FleetServer, ServeConfig, ServeReport, ShadowPolicy};
use uerl::trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl::trace::reduction::preprocess;

const SEED: u64 = 2025;

/// Serializes gate manipulation across the binary's test threads.
static GATE_LOCK: Mutex<()> = Mutex::new(());

fn lock_gate() -> MutexGuard<'static, ()> {
    GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn fixture() -> (TimelineSet, NodeJobSampler) {
    let log = TraceGenerator::new(SyntheticLogConfig::small(30, 60, 17)).generate();
    let timelines = TimelineSet::from_log(&preprocess(&log));
    let jobs = JobTraceGenerator::new(JobLogConfig::small(64, 30, 17)).generate();
    (timelines, NodeJobSampler::from_log(&jobs))
}

fn serve_fixture(
    timelines: &TimelineSet,
    sampler: &NodeJobSampler,
    shadows: Vec<ShadowPolicy>,
) -> ServeReport {
    let config = ServeConfig::for_timelines(timelines, MitigationConfig::paper_default(), SEED)
        .with_batch_size(16)
        .with_shards(4);
    let mut server =
        FleetServer::new(config, AlwaysMitigate, sampler.clone()).with_shadow_policies(shadows);
    let mut decisions = Vec::new();
    server
        .ingest_all(merged_fleet_stream(timelines), &mut decisions)
        .expect("the merged stream is time-ordered");
    server.report()
}

fn counter(snap: &MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    snap.counter(name, labels)
        .unwrap_or_else(|| panic!("counter {name} {labels:?} not in snapshot"))
}

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn an_open_gate_counts_the_served_stream_exactly() {
    let _guard = lock_gate();
    let (timelines, sampler) = fixture();
    set_enabled(true);
    let before = registry().snapshot();
    let report = serve_fixture(&timelines, &sampler, Vec::new());
    let after = registry().snapshot();
    set_enabled(false);

    let delta = |name: &str, labels: &[(&str, &str)]| {
        counter(&after, name, labels) - counter(&before, name, labels)
    };
    assert_eq!(delta("uerl_serve_events_total", &[]), report.events);
    assert_eq!(
        delta("uerl_serve_decisions_total", &[("action", "mitigate")]),
        report.mitigations
    );
    assert_eq!(
        delta("uerl_serve_decisions_total", &[("action", "none")]),
        report.non_mitigations
    );
    assert_eq!(delta("uerl_serve_out_of_order_total", &[]), 0);

    // The cost gauges accumulate in served order while the report sums per node in
    // node-id order — exactly equal in real arithmetic, so compare approximately.
    let mitigation_gauge = after
        .gauge("uerl_serve_mitigation_cost_node_hours", &[])
        .expect("mitigation cost gauge");
    let ue_gauge = after
        .gauge("uerl_serve_ue_cost_node_hours", &[])
        .expect("UE cost gauge");
    assert!(
        approx_eq(mitigation_gauge, report.mitigation_cost),
        "gauge {mitigation_gauge} vs report {}",
        report.mitigation_cost
    );
    assert!(
        approx_eq(ue_gauge, report.ue_cost),
        "gauge {ue_gauge} vs report {}",
        report.ue_cost
    );
}

#[test]
fn a_closed_gate_records_nothing() {
    let _guard = lock_gate();
    let (timelines, sampler) = fixture();
    set_enabled(false);
    // Instrument *registration* is lazy and happens even with the gate closed (the
    // handles must exist to be gated); force it so the snapshots compare recording
    // only, which is what the gate controls.
    uerl::serve::serve_metrics();
    let before = registry().snapshot();
    let report = serve_fixture(&timelines, &sampler, Vec::new());
    let after = registry().snapshot();

    assert!(report.events > 0, "the fixture must serve events");
    assert_eq!(
        before.fingerprint(),
        after.fingerprint(),
        "a closed gate must leave the event-time fingerprint untouched"
    );
    assert_eq!(
        counter(&before, "uerl_serve_events_total", &[]),
        counter(&after, "uerl_serve_events_total", &[]),
    );
    // Wall-clock instruments are gated too: serving must not even read the clock.
    assert_eq!(before.to_json(), after.to_json());
}

#[test]
fn event_time_metrics_are_bit_identical_across_thread_counts() {
    let _guard = lock_gate();
    let (timelines, sampler) = fixture();
    let shadows =
        || -> Vec<ShadowPolicy> { vec![Arc::new(NeverMitigate), Arc::new(AlwaysMitigate)] };

    set_enabled(true);
    let mut runs = Vec::new();
    for threads in [1, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let before = registry().snapshot();
        pool.install(|| serve_fixture(&timelines, &sampler, shadows()));
        let after = registry().snapshot();
        let deltas: Vec<u64> = [
            counter(&after, "uerl_serve_events_total", &[])
                - counter(&before, "uerl_serve_events_total", &[]),
            counter(
                &after,
                "uerl_serve_decisions_total",
                &[("action", "mitigate")],
            ) - counter(
                &before,
                "uerl_serve_decisions_total",
                &[("action", "mitigate")],
            ),
            counter(&after, "uerl_serve_decisions_total", &[("action", "none")])
                - counter(&before, "uerl_serve_decisions_total", &[("action", "none")]),
            counter(&after, "uerl_serve_duplicate_rounds_total", &[])
                - counter(&before, "uerl_serve_duplicate_rounds_total", &[]),
        ]
        .to_vec();
        // Gauges are absolute (set from the deterministic running totals), so their
        // post-run values must agree to the bit across thread counts.
        let gauges: Vec<u64> = [
            "uerl_serve_mitigation_cost_node_hours",
            "uerl_serve_ue_cost_node_hours",
            "uerl_serve_shadow_regret_node_hours",
        ]
        .iter()
        .map(|name| after.gauge(name, &[]).expect("cost gauge").to_bits())
        .collect();
        let shadow_gauges: Vec<u64> = ["Never-mitigate", "Always-mitigate"]
            .iter()
            .map(|policy| {
                after
                    .gauge(
                        "uerl_serve_shadow_total_cost_node_hours",
                        &[("policy", policy)],
                    )
                    .expect("shadow cost gauge")
                    .to_bits()
            })
            .collect();
        runs.push((deltas, gauges, shadow_gauges));
    }
    set_enabled(false);

    assert_eq!(
        runs[0], runs[1],
        "event-time metrics diverged across thread counts"
    );
}
