//! Serving parity: the online fleet server must reproduce the offline evaluator's
//! `run_policy` rollout **bit-for-bit** — decisions, per-node costs and fleet totals —
//! at every micro-batch size, shard count, thread count and record-retention mode.
//!
//! This is the determinism contract of the serving subsystem: micro-batching a tick's
//! decision requests into one forward pass, sharding the per-node state, fanning
//! ticks out over the work-stealing pool and dropping per-event logs (totals-only
//! retention) are pure execution-strategy choices that must never change a single
//! decision or cost bit.
//!
//! The suite honors `UERL_RETENTION` (CI runs it under both `full` and `totals`):
//! totals and counters are bit-compared in every mode, the per-node logs are compared
//! entry for entry under full retention and asserted empty under totals-only. Two
//! tests additionally pin each retention mode explicitly, independent of the
//! environment.

use std::sync::Arc;

use uerl::core::event_stream::TimelineSet;
use uerl::core::policies::{
    AlwaysMitigate, MyopicRfPolicy, NeverMitigate, QuantMode, RlPolicy, ThresholdRfPolicy,
};
use uerl::core::policy::MitigationPolicy;
use uerl::core::rf_dataset::build_rf_dataset_1day;
use uerl::core::state::STATE_DIM;
use uerl::core::trainer::{RlTrainer, TrainerConfig};
use uerl::core::MitigationConfig;
use uerl::eval::run::{run_policy, PolicyRun};
use uerl::forest::{RandomForest, RandomForestConfig};
use uerl::jobs::schedule::NodeJobSampler;
use uerl::jobs::{JobLogConfig, JobTraceGenerator};
use uerl::serve::{
    merged_fleet_stream, FleetServer, RecordRetention, ServeConfig, ServeReport, ShadowPolicy,
};
use uerl::trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl::trace::reduction::preprocess;

const SEED: u64 = 2025;

fn fixture() -> (TimelineSet, NodeJobSampler) {
    let log = TraceGenerator::new(SyntheticLogConfig::small(30, 60, 17)).generate();
    let timelines = TimelineSet::from_log(&preprocess(&log));
    let jobs = JobTraceGenerator::new(JobLogConfig::small(64, 30, 17)).generate();
    (timelines, NodeJobSampler::from_log(&jobs))
}

/// A small trained agent wrapped as the serving policy (the paper's deployment story).
///
/// The inference path follows `UERL_QUANT` (default f64; CI additionally runs this
/// whole suite with `UERL_QUANT=i8`). Because the SAME policy object drives both the
/// server and the offline `run_policy` oracle, every bit-parity assertion holds under
/// quantization too: the i8 run is asserted deterministic across batch sizes, shard
/// counts and thread counts even where its decisions diverge from the f64 run's.
fn trained_rl_policy(timelines: &TimelineSet, sampler: &NodeJobSampler) -> RlPolicy {
    let trainer = RlTrainer::new(TrainerConfig::reduced(25).with_seed(3));
    let outcome = trainer.train(timelines, sampler);
    let mut agent = outcome.agent;
    agent.compact_for_inference();
    RlPolicy::new(agent).with_quantization(QuantMode::from_env())
}

/// A small forest trained on the fixture's 1-day prediction dataset (the SC20
/// feature pipeline), degenerate-dataset guards included.
fn fitted_forest(timelines: &TimelineSet) -> RandomForest {
    let (mut dataset, _) = build_rf_dataset_1day(timelines);
    if dataset.is_empty() {
        dataset.push(vec![0.0; STATE_DIM - 1], false);
    }
    let mut rf_config = RandomForestConfig::sc20(STATE_DIM - 1, 5);
    rf_config.n_trees = 8;
    if dataset.positives() == 0 {
        rf_config.undersample_ratio = None;
    }
    RandomForest::fit(&dataset, &rf_config)
}

fn serve<P: MitigationPolicy + Clone>(
    policy: &P,
    timelines: &TimelineSet,
    sampler: &NodeJobSampler,
    batch_size: usize,
    shards: usize,
) -> ServeReport {
    // Retention follows `UERL_RETENTION` (the ServeConfig::new default), so CI's
    // two-mode matrix drives this whole suite through both retention modes.
    let config = ServeConfig::for_timelines(timelines, MitigationConfig::paper_default(), SEED)
        .with_batch_size(batch_size)
        .with_shards(shards);
    serve_with(config, policy, timelines, sampler)
}

fn serve_with<P: MitigationPolicy + Clone>(
    config: ServeConfig,
    policy: &P,
    timelines: &TimelineSet,
    sampler: &NodeJobSampler,
) -> ServeReport {
    let mut server = FleetServer::new(config, policy.clone(), sampler.clone());
    let mut decisions = Vec::new();
    server
        .ingest_all(merged_fleet_stream(timelines), &mut decisions)
        .expect("the merged stream is time-ordered");
    assert_eq!(
        decisions.len() as u64,
        server.report().mitigations + server.report().non_mitigations,
        "every non-fatal event must be answered"
    );
    server.report()
}

/// Bit-level comparison of a serving report against the offline rollout.
fn assert_parity(report: &ServeReport, offline: &PolicyRun) {
    assert_eq!(report.mitigations, offline.mitigations);
    assert_eq!(report.non_mitigations, offline.non_mitigations);
    assert_eq!(report.ue_count, offline.ue_count);
    assert_eq!(
        report.mitigation_cost.to_bits(),
        offline.mitigation_cost.to_bits(),
        "mitigation cost diverged: served {} vs offline {}",
        report.mitigation_cost,
        offline.mitigation_cost
    );
    assert_eq!(
        report.ue_cost.to_bits(),
        offline.ue_cost.to_bits(),
        "UE cost diverged: served {} vs offline {}",
        report.ue_cost,
        offline.ue_cost
    );
    match report.retention {
        RecordRetention::Full => {
            // Per-node decision and UE logs, flattened in node-id order, must match
            // the offline run's logs exactly (run_policy merges per-timeline partials
            // in node-id order, each in event order).
            let served_decisions: Vec<(u32, i64, bool)> = report
                .per_node
                .iter()
                .flat_map(|n| {
                    n.decisions
                        .iter()
                        .map(|&(t, m)| (n.node.0, t.0, m))
                        .collect::<Vec<_>>()
                })
                .collect();
            let offline_decisions: Vec<(u32, i64, bool)> = offline
                .decisions
                .iter()
                .map(|d| (d.node.0, d.time.0, d.mitigated))
                .collect();
            assert_eq!(
                served_decisions, offline_decisions,
                "decision logs diverged"
            );
            let served_ues: Vec<(u32, i64, u64)> = report
                .per_node
                .iter()
                .flat_map(|n| {
                    n.ue_records
                        .iter()
                        .map(|r| (n.node.0, r.time.0, r.cost.to_bits()))
                        .collect::<Vec<_>>()
                })
                .collect();
            let offline_ues: Vec<(u32, i64, u64)> = offline
                .ue_events
                .iter()
                .map(|u| (u.node.0, u.time.0, u.cost.to_bits()))
                .collect();
            assert_eq!(served_ues, offline_ues, "UE logs diverged");
        }
        RecordRetention::TotalsOnly => {
            // Totals-only sessions must keep no logs — that is the whole point —
            // while every total above already matched bit-for-bit.
            for node in &report.per_node {
                assert!(node.decisions.is_empty(), "totals-only kept a decision log");
                assert!(node.ue_records.is_empty(), "totals-only kept a UE log");
            }
        }
    }
}

#[test]
fn served_rl_decisions_are_bit_identical_to_offline_rollout_at_every_batch_size() {
    let (timelines, sampler) = fixture();
    let policy = trained_rl_policy(&timelines, &sampler);
    let offline = run_policy(
        &policy,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        SEED,
    );
    assert!(offline.ue_count > 0, "the fixture must contain UEs");
    assert!(
        offline.mitigations > 0 || offline.non_mitigations > 0,
        "the fixture must contain decisions"
    );
    for batch_size in [1, 7, 64] {
        let report = serve(&policy, &timelines, &sampler, batch_size, 8);
        assert_parity(&report, &offline);
    }
}

#[test]
fn serving_is_bit_identical_across_shard_counts() {
    let (timelines, sampler) = fixture();
    let policy = trained_rl_policy(&timelines, &sampler);
    let reference = serve(&policy, &timelines, &sampler, 7, 1);
    for shards in [2, 4, 16] {
        let report = serve(&policy, &timelines, &sampler, 7, shards);
        assert_eq!(
            report, reference,
            "shard count {shards} changed the outcome"
        );
    }
}

#[test]
fn serving_is_bit_identical_across_thread_counts_and_matches_offline() {
    let (timelines, sampler) = fixture();
    let policy = trained_rl_policy(&timelines, &sampler);
    let offline = run_policy(
        &policy,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        SEED,
    );
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| serve(&policy, &timelines, &sampler, 64, 8))
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one, four, "serving diverged across thread counts");
    assert_parity(&one, &offline);
    assert_parity(&four, &offline);
}

#[test]
fn quantized_serving_has_exact_parity_with_the_quantized_offline_rollout() {
    // Explicit i8 coverage independent of the UERL_QUANT environment: the quantized
    // policy must uphold the full serving determinism contract *within its own run* —
    // bit-parity with the offline rollout of the same quantized policy at every batch
    // size and shard count — even though its decisions may diverge from f64.
    let (timelines, sampler) = fixture();
    let policy = trained_rl_policy(&timelines, &sampler).with_quantization(QuantMode::I8);
    assert_eq!(policy.name(), "RL-i8");
    let offline = run_policy(
        &policy,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        SEED,
    );
    for (batch_size, shards) in [(1, 8), (7, 1), (64, 4)] {
        let report = serve(&policy, &timelines, &sampler, batch_size, shards);
        assert_parity(&report, &offline);
    }
}

#[test]
fn non_rl_policies_also_serve_with_exact_parity() {
    // The default `decide_batch` hook (loop over `decide`) must be batch-transparent
    // too; Myopic-RF exercises a model-driven policy through it and Always-mitigate a
    // trivial one.
    let (timelines, sampler) = fixture();
    let offline_always = run_policy(
        &AlwaysMitigate,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        SEED,
    );
    assert_parity(
        &serve(&AlwaysMitigate, &timelines, &sampler, 7, 4),
        &offline_always,
    );

    let myopic = MyopicRfPolicy::new(
        fitted_forest(&timelines),
        MitigationConfig::paper_default().mitigation_cost_node_hours(),
    );
    let offline_myopic = run_policy(
        &myopic,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        SEED,
    );
    for batch_size in [1, 7, 64] {
        assert_parity(
            &serve(&myopic, &timelines, &sampler, batch_size, 4),
            &offline_myopic,
        );
    }
}

#[test]
fn full_retention_serving_matches_offline_logs_regardless_of_environment() {
    // Explicit full-retention coverage, independent of UERL_RETENTION: the per-node
    // decision and UE logs must always be available to (and match) the offline
    // evaluator when a caller opts in.
    let (timelines, sampler) = fixture();
    let offline = run_policy(
        &AlwaysMitigate,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        SEED,
    );
    let config = ServeConfig::for_timelines(&timelines, MitigationConfig::paper_default(), SEED)
        .with_batch_size(16)
        .with_shards(4)
        .with_retention(RecordRetention::Full);
    let report = serve_with(config, &AlwaysMitigate, &timelines, &sampler);
    assert_eq!(report.retention, RecordRetention::Full);
    assert!(
        report.per_node.iter().any(|n| !n.decisions.is_empty()),
        "full retention must keep the decision logs"
    );
    assert_parity(&report, &offline);
}

#[test]
fn totals_only_retention_matches_full_on_every_total_and_keeps_no_logs() {
    // Explicit totals-only coverage, independent of UERL_RETENTION: dropping the
    // per-event logs must not move a single counter or cost bit relative to a full-
    // retention run of the same stream — and the logs must actually be gone.
    let (timelines, sampler) = fixture();
    let base = ServeConfig::for_timelines(&timelines, MitigationConfig::paper_default(), SEED)
        .with_batch_size(16)
        .with_shards(4);
    let full = serve_with(
        base.with_retention(RecordRetention::Full),
        &AlwaysMitigate,
        &timelines,
        &sampler,
    );
    let totals = serve_with(
        base.with_retention(RecordRetention::TotalsOnly),
        &AlwaysMitigate,
        &timelines,
        &sampler,
    );
    assert_eq!(totals.retention, RecordRetention::TotalsOnly);
    assert_eq!(totals.mitigations, full.mitigations);
    assert_eq!(totals.non_mitigations, full.non_mitigations);
    assert_eq!(totals.ue_count, full.ue_count);
    assert_eq!(
        totals.mitigation_cost.to_bits(),
        full.mitigation_cost.to_bits()
    );
    assert_eq!(totals.ue_cost.to_bits(), full.ue_cost.to_bits());
    assert_eq!(totals.per_node.len(), full.per_node.len());
    for (t, f) in totals.per_node.iter().zip(&full.per_node) {
        assert_eq!(t.node, f.node);
        assert_eq!(t.mitigations, f.mitigations);
        assert_eq!(t.non_mitigations, f.non_mitigations);
        assert_eq!(t.ue_count, f.ue_count);
        assert_eq!(t.mitigation_cost.to_bits(), f.mitigation_cost.to_bits());
        assert_eq!(t.ue_cost.to_bits(), f.ue_cost.to_bits());
        assert!(t.decisions.is_empty() && t.ue_records.is_empty());
    }
}

#[test]
fn streaming_in_prefix_chunks_matches_one_shot_ingestion() {
    // A long-running service ingests incrementally; pausing between arbitrary events
    // (flushing only at tick boundaries, as ingest does internally) must not change
    // anything relative to ingesting the whole stream in one call.
    let (timelines, sampler) = fixture();
    let policy = trained_rl_policy(&timelines, &sampler);
    let one_shot = serve(&policy, &timelines, &sampler, 16, 4);

    let config = ServeConfig::for_timelines(&timelines, MitigationConfig::paper_default(), SEED)
        .with_batch_size(16)
        .with_shards(4);
    let mut server = FleetServer::new(config, policy, sampler.clone());
    let stream = merged_fleet_stream(&timelines);
    let mut decisions = Vec::new();
    for chunk in stream.chunks(97) {
        for event in chunk {
            server.ingest(event.clone(), &mut decisions).unwrap();
        }
    }
    server.flush(&mut decisions);
    assert_eq!(server.report(), one_shot);
}

#[test]
fn serving_with_metrics_enabled_keeps_bit_parity_with_offline() {
    // The observability layer must be provably inert: force the gate OPEN for a
    // serving run (regardless of UERL_METRICS) and demand the same bit-parity with
    // the offline oracle that the gate-off runs uphold. CI additionally runs this
    // whole binary under UERL_METRICS=on at one and four threads.
    let (timelines, sampler) = fixture();
    let policy = trained_rl_policy(&timelines, &sampler);
    let offline = run_policy(
        &policy,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        SEED,
    );
    let was_enabled = uerl::obs::enabled();
    uerl::obs::set_enabled(true);
    let reports: Vec<ServeReport> = [(1, 8), (16, 1), (64, 4)]
        .iter()
        .map(|&(batch_size, shards)| serve(&policy, &timelines, &sampler, batch_size, shards))
        .collect();
    uerl::obs::set_enabled(was_enabled);
    for report in &reports {
        assert_parity(report, &offline);
    }
}

#[test]
fn shadow_scores_are_bit_identical_to_offline_rollouts_of_each_shadow() {
    // Shadow-policy scoring is counterfactual accounting over the identical served
    // stream, so every lane's score must be bit-identical to what the offline
    // evaluator computes when it replays that policy over the same timelines —
    // counters, mitigation cost (training cost included) and UE cost, for trivial
    // baselines, SC20-RF and the myopic cost-benefit policy alike.
    let (timelines, sampler) = fixture();
    let policy = trained_rl_policy(&timelines, &sampler);
    let config = MitigationConfig::paper_default();
    let shadows: Vec<ShadowPolicy> = vec![
        Arc::new(AlwaysMitigate),
        Arc::new(NeverMitigate),
        Arc::new(
            ThresholdRfPolicy::new(fitted_forest(&timelines), 0.5, "SC20-RF")
                .with_training_cost(0.25),
        ),
        Arc::new(MyopicRfPolicy::new(
            fitted_forest(&timelines),
            config.mitigation_cost_node_hours(),
        )),
    ];

    let serve_config = ServeConfig::for_timelines(&timelines, config, SEED)
        .with_batch_size(16)
        .with_shards(4);
    let mut server = FleetServer::new(serve_config, policy, sampler.clone())
        .with_shadow_policies(shadows.clone());
    let mut decisions = Vec::new();
    server
        .ingest_all(merged_fleet_stream(&timelines), &mut decisions)
        .expect("the merged stream is time-ordered");
    let scores = server.shadow_report();
    assert_eq!(scores.len(), shadows.len());

    for (score, shadow) in scores.iter().zip(&shadows) {
        let offline = run_policy(&**shadow, &timelines, &sampler, config, SEED);
        assert_eq!(score.policy, shadow.name());
        assert_eq!(
            score.mitigations, offline.mitigations,
            "{}: mitigation count diverged",
            score.policy
        );
        assert_eq!(
            score.non_mitigations, offline.non_mitigations,
            "{}: non-mitigation count diverged",
            score.policy
        );
        assert_eq!(
            score.ue_count, offline.ue_count,
            "{}: UE count diverged",
            score.policy
        );
        assert_eq!(
            score.mitigation_cost.to_bits(),
            offline.mitigation_cost.to_bits(),
            "{}: mitigation cost diverged: shadow {} vs offline {}",
            score.policy,
            score.mitigation_cost,
            offline.mitigation_cost
        );
        assert_eq!(
            score.ue_cost.to_bits(),
            offline.ue_cost.to_bits(),
            "{}: UE cost diverged: shadow {} vs offline {}",
            score.policy,
            score.ue_cost,
            offline.ue_cost
        );
    }
}
