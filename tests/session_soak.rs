//! Long-stream soak: a single node served continuously for two years must keep its
//! session O(window) — the feature-history ring buffer bounded by the 1-hour lookback
//! and, under totals-only retention, an accounting footprint that stops growing once
//! warm — while staying **bit-identical** to the offline environment's rollout of the
//! same timeline. The bound is asserted at every event, so a regression that lets the
//! history grow with the stream (the pre-ring-buffer behavior) fails immediately.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uerl::core::event_stream::NodeTimeline;
use uerl::core::state::StateFeatures;
use uerl::core::{MitigationConfig, MitigationEnv};
use uerl::jobs::schedule::{node_workload_seed, NodeJobSampler};
use uerl::jobs::{JobLogConfig, JobTraceGenerator};
use uerl::serve::{NodeSession, Observed, RecordRetention};
use uerl::trace::events::{CeDetail, Detector};
use uerl::trace::log::MergedEvent;
use uerl::trace::types::{CellLocation, DimmId, NodeId, SimTime};

const NODE: NodeId = NodeId(42);
const SEED: u64 = 9090;
/// One event every 7 minutes for ~2 years.
const EVENT_GAP_SECS: i64 = 7 * 60;
const SOAK_DAYS: i64 = 730;
/// At one event per 7 minutes, a 1-hour window holds at most ⌈3600/420⌉ = 9 events;
/// plus the sentinel the ring buffer may keep 10.
const HISTORY_BOUND: usize = 3600 / EVENT_GAP_SECS as usize + 2;

/// Deterministic two-year event stream: steady CE traffic cycling over a fixed
/// 64-cell location pool (so the distinct-location sets saturate instead of growing),
/// a boot roughly every 997 events and a fatal roughly every 5000.
fn soak_stream() -> Vec<MergedEvent> {
    let end = SimTime::from_days(SOAK_DAYS);
    let mut events = Vec::new();
    let mut t = EVENT_GAP_SECS;
    let mut k = 0usize;
    while t < end.0 {
        let cell = k % 64;
        let fatal = k % 5000 == 4999;
        events.push(MergedEvent {
            time: SimTime(t),
            node: NODE,
            ce_count: (k % 3 + 1) as u32,
            ce_details: vec![CeDetail {
                dimm: DimmId::new(NODE, (cell % 4) as u8),
                location: CellLocation::new(
                    (cell % 2) as u8,
                    (cell % 8) as u8,
                    (cell / 8) as u32,
                    (cell % 16) as u32,
                ),
                detector: Detector::DemandRead,
            }],
            ue_warnings: u32::from(k.is_multiple_of(1471)),
            boots: u32::from(k % 997 == 996),
            retired_slots: Vec::new(),
            fatal,
            ue_detector: None,
        });
        t += EVENT_GAP_SECS;
        k += 1;
    }
    events
}

fn sampler() -> NodeJobSampler {
    let jobs = JobTraceGenerator::new(JobLogConfig::small(64, 30, 11)).generate();
    NodeJobSampler::from_log(&jobs)
}

/// The same policy-free, state-dependent rule the session parity tests use: it
/// exercises both decision branches without dragging a trained model into the soak.
fn rule(s: &StateFeatures) -> bool {
    s.potential_ue_cost > 10.0
}

fn replay_session(events: &[MergedEvent], retention: RecordRetention) -> (NodeSession, usize) {
    let sampler = sampler();
    let mut session = NodeSession::new(
        NODE,
        SimTime::ZERO,
        SimTime::from_days(SOAK_DAYS),
        MitigationConfig::paper_default(),
        SEED,
        &sampler,
        retention,
        0,
    );
    let mut max_history = 0usize;
    for event in events {
        if let Observed::Request(state) = session.observe(event) {
            let mitigate = rule(&state);
            session.apply_decision(state.time, mitigate);
        }
        max_history = max_history.max(session.history_len());
        assert!(
            session.history_len() <= HISTORY_BOUND,
            "history grew to {} entries at t={}s — the ring buffer is not O(window)",
            session.history_len(),
            event.time.0
        );
    }
    (session, max_history)
}

#[test]
fn two_year_session_stays_bounded_and_bit_identical_to_offline() {
    let events = soak_stream();
    assert!(events.len() > 140_000, "the soak must be a long stream");

    // Offline reference: the pull-mode environment over the identical timeline,
    // workload and decision rule (full retention, no termination on fatals).
    let sampler = sampler();
    let mut rng = StdRng::seed_from_u64(node_workload_seed(SEED, NODE));
    let sequence = sampler.sample_sequence(SimTime::ZERO, SimTime::from_days(SOAK_DAYS), &mut rng);
    let timeline = NodeTimeline::new(
        NODE,
        SimTime::ZERO,
        SimTime::from_days(SOAK_DAYS),
        events.clone(),
    );
    let mut env = MitigationEnv::new(timeline, sequence, MitigationConfig::paper_default(), false);
    let mut state = env.reset();
    while let Some(s) = state {
        let outcome = env.step(rule(&s));
        state = outcome.next_state;
    }
    assert!(env.ue_count() > 10, "the soak must contain fatal events");
    assert!(
        env.mitigation_count() > 0 && env.non_mitigation_count() > 0,
        "the soak must exercise both decision branches"
    );

    let (session, max_history) = replay_session(&events, RecordRetention::Full);
    assert!(
        max_history <= HISTORY_BOUND,
        "peak history {max_history} exceeds the window bound {HISTORY_BOUND}"
    );
    assert_eq!(session.decision_count(), env.decision_count());
    assert_eq!(session.mitigation_count(), env.mitigation_count());
    assert_eq!(session.non_mitigation_count(), env.non_mitigation_count());
    assert_eq!(session.ue_count(), env.ue_count());
    assert_eq!(
        session.total_mitigation_cost().to_bits(),
        env.total_mitigation_cost().to_bits(),
        "two-year mitigation cost diverged from the offline rollout"
    );
    assert_eq!(
        session.total_ue_cost().to_bits(),
        env.total_ue_cost().to_bits(),
        "two-year UE cost diverged from the offline rollout"
    );
    assert_eq!(session.decisions(), env.decisions());
    assert_eq!(session.ue_records(), env.ue_records());
}

#[test]
fn totals_only_soak_footprint_stops_growing_after_warmup() {
    let events = soak_stream();
    let mid = events.len() / 2;

    // Replay the first half, note the footprint, replay the rest: by mid-stream the
    // ring buffer, the 64-cell location sets and the job sequence are all saturated,
    // so another year of events must not add a single byte.
    let sampler = sampler();
    let mut session = NodeSession::new(
        NODE,
        SimTime::ZERO,
        SimTime::from_days(SOAK_DAYS),
        MitigationConfig::paper_default(),
        SEED,
        &sampler,
        RecordRetention::TotalsOnly,
        0,
    );
    let drive = |chunk: &[MergedEvent], session: &mut NodeSession| {
        for event in chunk {
            if let Observed::Request(state) = session.observe(event) {
                let mitigate = rule(&state);
                session.apply_decision(state.time, mitigate);
            }
        }
    };
    drive(&events[..mid], &mut session);
    let warm_bytes = session.approx_bytes();
    let warm_history = session.history_len();
    drive(&events[mid..], &mut session);

    assert!(
        session.approx_bytes() <= warm_bytes,
        "footprint grew from {} to {} bytes over the second year",
        warm_bytes,
        session.approx_bytes()
    );
    assert!(session.history_len() <= HISTORY_BOUND);
    assert!(
        warm_history <= HISTORY_BOUND,
        "mid-stream history {warm_history} already exceeded the bound"
    );
    assert!(
        session.decisions().is_empty() && session.ue_records().is_empty(),
        "totals-only must keep no per-event logs"
    );
    assert!(session.decision_count() > 100_000);
    // The footprint is dominated by the two-year job schedule, which is sampled up
    // front and never grows (~85 KB here); the ring buffer and location sets are a
    // few KB. The bound guards against any per-event accumulation creeping back in.
    assert!(
        session.approx_bytes() < 128 * 1024,
        "a two-year totals-only session must stay under 128 KiB, got {}",
        session.approx_bytes()
    );
}
