//! Integration tests of the model-training path: the RF baseline dataset and forest, the
//! RL trainer, the environment's cost accounting, and the classification metrics — all
//! exercised across crate boundaries.

use proptest::prelude::*;
use uerl::core::cost::{reward, ue_cost};
use uerl::core::event_stream::TimelineSet;
use uerl::core::policies::{NeverMitigate, ThresholdRfPolicy};
use uerl::core::rf_dataset::build_rf_dataset_1day;
use uerl::core::state::STATE_DIM;
use uerl::core::trainer::{RlTrainer, TrainerConfig};
use uerl::core::MitigationConfig;
use uerl::eval::metrics::ClassificationMetrics;
use uerl::eval::run::run_policy;
use uerl::forest::{RandomForest, RandomForestConfig};
use uerl::jobs::schedule::NodeJobSampler;
use uerl::jobs::{JobLogConfig, JobTraceGenerator};
use uerl::trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl::trace::reduction::preprocess;

fn pipeline_inputs(seed: u64) -> (TimelineSet, NodeJobSampler) {
    let log = TraceGenerator::new(SyntheticLogConfig::small(36, 80, seed)).generate();
    let timelines = TimelineSet::from_log(&preprocess(&log));
    let jobs = JobTraceGenerator::new(JobLogConfig::small(64, 40, seed)).generate();
    (timelines, NodeJobSampler::from_log(&jobs))
}

#[test]
fn rf_baseline_trains_on_the_extracted_dataset_and_drives_a_policy() {
    let (timelines, sampler) = pipeline_inputs(123);
    let (dataset, origins) = build_rf_dataset_1day(&timelines);
    assert_eq!(dataset.len(), origins.len());
    assert_eq!(dataset.n_features(), STATE_DIM - 1);
    assert!(
        dataset.len() > 50,
        "the synthetic log must produce enough samples"
    );
    assert!(
        dataset.positives() > 0,
        "some events precede a UE within one day"
    );
    assert!(
        dataset.positive_fraction() < 0.5,
        "UEs are the minority class"
    );

    let forest = RandomForest::fit(&dataset, &RandomForestConfig::small(1));
    let policy = ThresholdRfPolicy::new(forest, 0.5, "SC20-RF");
    let run = run_policy(
        &policy,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        5,
    );
    assert_eq!(
        run.decisions.len() as u64,
        run.mitigations + run.non_mitigations
    );
    let metrics = ClassificationMetrics::from_run_1day(&run);
    assert_eq!(
        metrics.true_positives + metrics.false_negatives,
        run.ue_count
    );
}

#[test]
fn rl_training_improves_over_the_untrained_agent_or_at_least_runs_cleanly() {
    let (timelines, sampler) = pipeline_inputs(321);
    let trained =
        RlTrainer::new(TrainerConfig::reduced(60).with_seed(3)).train(&timelines, &sampler);
    assert!(trained.total_steps > 0);
    assert!(trained.mean_episode_return <= 0.0);
    // The policy must be usable for evaluation and carry its training cost.
    let policy = trained.into_policy();
    let run = run_policy(
        &policy,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        5,
    );
    assert!(run.mitigation_cost >= 0.0);
    let never = run_policy(
        &NeverMitigate,
        &timelines,
        &sampler,
        MitigationConfig::paper_default(),
        5,
    );
    assert_eq!(
        run.ue_count, never.ue_count,
        "the log's UEs are policy-independent"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn equation_3_and_4_invariants(
        nodes in 1u32..2048,
        hours in 0.0f64..10_000.0,
        mitigation_cost in 0.0f64..10.0,
        mitigated in any::<bool>(),
        ue in any::<bool>(),
    ) {
        let cost = ue_cost(nodes, hours);
        prop_assert!(cost >= 0.0);
        prop_assert!((cost - nodes as f64 * hours).abs() < 1e-9);
        let r = reward(mitigated, mitigation_cost, ue, cost);
        // Rewards are never positive and decompose exactly into the two cost terms.
        prop_assert!(r <= 1e-12);
        let expected = -(if mitigated { mitigation_cost } else { 0.0 })
            - (if ue { cost } else { 0.0 });
        prop_assert!((r - expected).abs() < 1e-9);
    }
}
