//! Offline vendored subset of the `criterion` API.
//!
//! Supports the surface the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function` with `Bencher::iter`, and `black_box`. Instead of criterion's
//! statistical analysis it reports min / mean / max wall-clock per iteration on stdout,
//! which is enough to track the perf trajectory offline.

use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier, optionally derived from a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Bench a function outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(id, 10, Duration::from_secs(5), f);
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock budget for each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (cosmetic; timing is reported per benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Time `f`, collecting up to the configured number of samples within the budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warm-up iteration outside the measurement.
        black_box(f());
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_benchmark(id: &str, sample_size: usize, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        budget,
        max_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples collected");
        return;
    }
    let n = bencher.samples.len();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n as u32;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    println!("  {id}: {n} samples, min {min:?}, mean {mean:?}, max {max:?}");
}

/// Declare a benchmark group function (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(200));
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran >= 3, "warm-up plus samples should have run");
    }
}
