//! Offline vendored subset of the `proptest` API.
//!
//! Supports what the workspace's property tests use: range strategies, tuple
//! strategies, `prop_map`, `proptest::collection::vec`, `any::<bool>()`,
//! `ProptestConfig::with_cases`, the `proptest!` macro and `prop_assert!` /
//! `prop_assert_eq!`. Unlike real proptest there is no shrinking: each case is sampled
//! from a per-case deterministic seed, and a failing case panics with the standard
//! assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving strategy sampling.
pub type TestRng = StdRng;

/// Build the deterministic RNG for one test case.
pub fn new_test_rng(case: u64) -> TestRng {
    TestRng::seed_from_u64(0xC0FF_EE00_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run configuration (only the case count is supported).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A sampleable value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "arbitrary" strategy.
pub trait Arbitrary: Sized {
    /// Sample one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.gen::<u32>() & 0xFF) as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>()
    }
}

/// The canonical strategy of an [`Arbitrary`] type.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Assert inside a property (panics on failure, like an exhausted proptest case).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Define property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(config.cases) {
                    let mut __rng = $crate::new_test_rng(__case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    //! Glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -4.0f64..4.0, flag in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4.0..4.0).contains(&y));
            let _ = flag;
        }

        #[test]
        fn mapped_tuples_compose(pair in (0u8..4, 0i64..100).prop_map(|(a, b)| (a as i64) + b)) {
            prop_assert!((0..103).contains(&pair));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = crate::collection::vec(0u32..5, 2..9);
        for case in 0..50 {
            let mut rng = crate::new_test_rng(case);
            let v = Strategy::sample(&strat, &mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = 0u64..1_000_000;
        let a = Strategy::sample(&strat, &mut crate::new_test_rng(7));
        let b = Strategy::sample(&strat, &mut crate::new_test_rng(7));
        assert_eq!(a, b);
    }
}
