//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors the
//! small surface it actually uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] traits (with `gen`, `gen_range`, `gen_bool`);
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded through SplitMix64;
//! * [`seq::SliceRandom`] — Fisher–Yates shuffling and uniform element choice.
//!
//! The stream of numbers differs from upstream `rand`'s ChaCha-based `StdRng`, but every
//! consumer in this workspace only relies on *determinism per seed*, which this
//! implementation guarantees. Swapping back to the real crate is a manifest-only change.

/// The core of a random number generator: uniform raw bits.
pub trait RngCore {
    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from raw uniform bits (the subset of `Standard` this workspace uses).
pub trait FromRng: Sized {
    /// Draw one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl FromRng for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types with a uniform draw between two bounds (mirrors `rand::distributions::uniform::
/// SampleUniform` closely enough for type inference to flow through ranges).
pub trait SampleUniform: PartialOrd + Copy {
    /// Draw uniformly from `[low, high)` (`inclusive` widens to `[low, high]`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                    (high as i128 - low as i128) as u128 + 1
                } else {
                    assert!(low < high, "cannot sample empty range");
                    (high as i128 - low as i128) as u128
                };
                // Rejection sampling keeps the draw unbiased.
                let zone = u128::from(u64::MAX) - u128::from(u64::MAX) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < zone {
                        return (low as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit = <$t as FromRng>::from_rng(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// A range samplable uniformly (the subset of `SampleRange` this workspace uses).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience methods layered on [`RngCore`] (the subset of `rand::Rng` this workspace
/// uses).
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw a value uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, 256-bit state, passes BigCrush; not cryptographically secure
    /// (neither is it used as such anywhere in this workspace).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related randomness.

    use super::{Rng, RngCore};

    /// Shuffling and uniform element choice on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }

    #[inline]
    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        debug_assert!(n > 0);
        let span = n as u64;
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return (v % span) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let t = rng.gen_range(-10..-2i64);
            assert!((-10..-2).contains(&t));
        }
    }

    #[test]
    fn gen_range_covers_every_bucket() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut c: Vec<u32> = (0..50).collect();
        c.shuffle(&mut StdRng::seed_from_u64(6));
        assert_ne!(a, c);
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = draw(dyn_rng);
        assert!((0.0..1.0).contains(&v));
    }
}
