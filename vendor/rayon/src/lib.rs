//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no registry access, so the workspace vendors the surface
//! it uses: `par_iter()` / `into_par_iter()` with `map` + `collect`/`for_each`,
//! `current_num_threads`, and `ThreadPoolBuilder` → `ThreadPool::install` for scoped
//! thread-count overrides.
//!
//! Execution model: eager chunked fork-join on `std::thread::scope` rather than a
//! work-stealing pool. Each parallel call splits its items into at most
//! [`current_num_threads`] contiguous chunks, runs them on scoped threads, and joins in
//! index order — so **results are always in input order and independent of the thread
//! count**, which is exactly the determinism contract the UERL engine relies on. Worker
//! panics are propagated with `resume_unwind`.
//!
//! Thread-count resolution order: innermost `ThreadPool::install` override, then the
//! `RAYON_NUM_THREADS` environment variable, then `std::thread::available_parallelism`;
//! the ambient (non-override) resolution is performed once and cached, like the real
//! rayon's global pool size.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = no override.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The ambient thread count (`RAYON_NUM_THREADS`, else available parallelism), resolved
/// once: the real rayon also fixes its global pool size at first use, and re-reading the
/// environment on every parallel call costs a lock + string parse on the hot path.
static AMBIENT_THREADS: OnceLock<usize> = OnceLock::new();

fn ambient_num_threads() -> usize {
    *AMBIENT_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The number of threads parallel calls on this thread will currently fan out to.
pub fn current_num_threads() -> usize {
    let over = THREAD_OVERRIDE.with(Cell::get);
    if over > 0 {
        return over;
    }
    ambient_num_threads()
}

/// Builder mirroring `rayon::ThreadPoolBuilder` (only `num_threads` is supported).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never actually produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (ambient) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of threads (0 = ambient default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in this implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override, mirroring `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count installed for every parallel call `f`
    /// makes (directly or nested) on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads));
        let guard = RestoreOverride(prev);
        let result = f();
        drop(guard);
        result
    }

    /// The configured thread count (0 = ambient default).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

struct RestoreOverride(usize);

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        let prev = self.0;
        THREAD_OVERRIDE.with(|c| c.set(prev));
    }
}

/// Run `f` over `0..len`, fanning out to at most [`current_num_threads`] scoped threads.
/// Results are returned in index order regardless of the thread count.
pub fn execute_indexed<U: Send>(len: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let budget = current_num_threads();
    let threads = budget.clamp(1, len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    // Divide the thread budget among the workers so nested parallel calls cannot
    // multiply OS threads: a worker's own fan-outs share its slice of the budget,
    // keeping the total number of live threads near the top-level budget at any
    // nesting depth.
    let child_budget = (budget / threads).max(1);
    let mut out: Vec<U> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move || {
                THREAD_OVERRIDE.with(|c| c.set(child_budget));
                (start..end).map(f).collect::<Vec<U>>()
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

/// Like [`execute_indexed`] but consuming owned items, preserving order.
pub fn execute_owned<I: Send, U: Send>(items: Vec<I>, f: impl Fn(I) -> U + Sync) -> Vec<U> {
    let len = items.len();
    let budget = current_num_threads();
    let threads = budget.clamp(1, len.max(1));
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    // Same nesting discipline as `execute_indexed`: children split the budget.
    let child_budget = (budget / threads).max(1);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let mut out: Vec<U> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks.len());
        for part in chunks {
            let f = &f;
            handles.push(scope.spawn(move || {
                THREAD_OVERRIDE.with(|c| c.set(child_budget));
                part.into_iter().map(f).collect::<Vec<U>>()
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

pub mod iter {
    //! The parallel-iterator subset: `par_iter` / `into_par_iter` → `map` →
    //! `collect` / `for_each` / `sum`.

    use super::{execute_indexed, execute_owned};

    /// Borrowing parallel iteration (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed item type.
        type Item: Sync + 'a;
        /// The concrete parallel iterator.
        type Iter;
        /// Borrowing parallel iterator over the collection.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        type Iter = ParSlice<'a, T>;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        type Iter = ParSlice<'a, T>;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }

    /// Consuming parallel iteration (`into_par_iter`).
    pub trait IntoParallelIterator {
        /// The owned item type.
        type Item: Send;
        /// The concrete parallel iterator.
        type Iter;
        /// Consuming parallel iterator over the collection.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParVec<T>;
        fn into_par_iter(self) -> ParVec<T> {
            ParVec { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// Parallel iterator over a borrowed slice.
    pub struct ParSlice<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParSlice<'a, T> {
        /// Map each borrowed item.
        pub fn map<U: Send, F: Fn(&'a T) -> U + Sync>(self, f: F) -> MapSlice<'a, T, F> {
            MapSlice {
                slice: self.slice,
                f,
            }
        }
    }

    /// Mapped parallel slice iterator.
    pub struct MapSlice<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> MapSlice<'a, T, F> {
        /// Execute in parallel and collect in input order.
        pub fn collect<C, U>(self) -> C
        where
            U: Send,
            F: Fn(&'a T) -> U + Sync,
            C: FromParallelIterator<U>,
        {
            let slice = self.slice;
            let f = self.f;
            C::from_vec(execute_indexed(slice.len(), |i| f(&slice[i])))
        }

        /// Execute in parallel for side effects.
        pub fn for_each<U>(self)
        where
            U: Send,
            F: Fn(&'a T) -> U + Sync,
        {
            let _: Vec<U> = {
                let slice = self.slice;
                let f = self.f;
                execute_indexed(slice.len(), |i| f(&slice[i]))
            };
        }

        /// Execute in parallel and sum the results.
        pub fn sum<U>(self) -> U
        where
            U: Send + std::iter::Sum<U>,
            F: Fn(&'a T) -> U + Sync,
        {
            let slice = self.slice;
            let f = self.f;
            execute_indexed(slice.len(), |i| f(&slice[i]))
                .into_iter()
                .sum()
        }
    }

    /// Parallel iterator over an owned vector.
    pub struct ParVec<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParVec<T> {
        /// Map each owned item.
        pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> MapVec<T, F> {
            MapVec {
                items: self.items,
                f,
            }
        }
    }

    /// Mapped parallel owned-vector iterator.
    pub struct MapVec<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send, F> MapVec<T, F> {
        /// Execute in parallel and collect in input order.
        pub fn collect<C, U>(self) -> C
        where
            U: Send,
            F: Fn(T) -> U + Sync,
            C: FromParallelIterator<U>,
        {
            C::from_vec(execute_owned(self.items, self.f))
        }
    }

    /// Parallel iterator over a `usize` range.
    pub struct ParRange {
        range: std::ops::Range<usize>,
    }

    impl ParRange {
        /// Map each index.
        pub fn map<U: Send, F: Fn(usize) -> U + Sync>(self, f: F) -> MapRange<F> {
            MapRange {
                range: self.range,
                f,
            }
        }
    }

    /// Mapped parallel range iterator.
    pub struct MapRange<F> {
        range: std::ops::Range<usize>,
        f: F,
    }

    impl<F> MapRange<F> {
        /// Execute in parallel and collect in input order.
        pub fn collect<C, U>(self) -> C
        where
            U: Send,
            F: Fn(usize) -> U + Sync,
            C: FromParallelIterator<U>,
        {
            let start = self.range.start;
            let f = self.f;
            C::from_vec(execute_indexed(self.range.end.saturating_sub(start), |i| {
                f(start + i)
            }))
        }
    }

    /// Collections constructible from an ordered parallel result.
    pub trait FromParallelIterator<U> {
        /// Build the collection from the in-order results.
        fn from_vec(v: Vec<U>) -> Self;
    }

    impl<U> FromParallelIterator<U> for Vec<U> {
        fn from_vec(v: Vec<U>) -> Self {
            v
        }
    }
}

pub mod prelude {
    //! Glob-importable parallel-iterator traits, mirroring `rayon::prelude`.
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn indexed_execution_preserves_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_matches_serial() {
        let data: Vec<u64> = (0..1000).collect();
        let par: Vec<u64> = data.par_iter().map(|&x| x * x).collect();
        let ser: Vec<u64> = data.iter().map(|&x| x * x).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn owned_execution_preserves_order() {
        let data: Vec<String> = (0..50).map(|i| format!("item{i}")).collect();
        let par: Vec<usize> = data.clone().into_par_iter().map(|s| s.len()).collect();
        let ser: Vec<usize> = data.iter().map(|s| s.len()).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn install_overrides_thread_count_and_restores() {
        let ambient = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 1);
        assert_eq!(current_num_threads(), ambient);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let work = |i: usize| (i as f64).sqrt() * 3.0 + i as f64;
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let a: Vec<f64> = one.install(|| (0..500).into_par_iter().map(work).collect());
        let b: Vec<f64> = four.install(|| (0..500).into_par_iter().map(work).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn workers_split_the_installed_budget() {
        // A 6-thread budget fanned out over 3 workers leaves each worker a 2-thread
        // slice; with 3 workers on a 3-thread budget each worker drops to 1 (serial),
        // so nested fan-outs cannot multiply OS threads.
        let pool = ThreadPoolBuilder::new().num_threads(6).build().unwrap();
        let counts: Vec<usize> = pool.install(|| {
            (0..3)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(counts.iter().all(|&c| c == 2), "workers saw {counts:?}");
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let counts: Vec<usize> = pool.install(|| {
            (0..6)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(counts.iter().all(|&c| c == 1), "workers saw {counts:?}");
    }

    #[test]
    fn ambient_thread_count_is_cached_after_first_use() {
        // The first call pins the ambient resolution in the `OnceLock`; every later
        // call must serve the cached value without re-reading the environment
        // (`install` overrides remain the way to change the count). No env mutation
        // here: setenv is unsafe under the multi-threaded test harness.
        let first = current_num_threads();
        assert!(first >= 1);
        assert_eq!(super::AMBIENT_THREADS.get().copied(), Some(first));
        assert_eq!(current_num_threads(), first);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..16)
                .into_par_iter()
                .map(|i| if i == 7 { panic!("boom") } else { i })
                .collect();
        });
        assert!(result.is_err());
    }

    #[test]
    fn sum_matches_serial() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(total, 4950);
    }
}
