//! Offline vendored subset of the `rayon` API, backed by a persistent work-stealing
//! thread pool.
//!
//! The build environment has no registry access, so the workspace vendors the surface
//! it uses: [`join`] for recursive fork-join splitting, [`scope`] / [`Scope::spawn`]
//! for dynamic task sets, `par_iter()` / `into_par_iter()` with `map` +
//! `collect`/`for_each`/`sum`, [`current_num_threads`], and `ThreadPoolBuilder` →
//! [`ThreadPool::install`] for scoped thread-count overrides.
//!
//! # Execution model
//!
//! Earlier revisions ran every parallel call as an eager fork-join on
//! `std::thread::scope`, paying thread-spawn latency at every nesting level. This
//! version amortizes the workers once, like the real rayon:
//!
//! * A **global registry** is created lazily on the first parallel call. It owns one
//!   FIFO *injector* queue for jobs submitted from non-worker threads and one deque per
//!   worker thread. `ambient_threads - 1` workers are spawned exactly once (the calling
//!   thread is the extra participant); later parallel calls reuse them — see
//!   [`pool_worker_threads_spawned`], which test suites use to pin the no-thread-growth
//!   guarantee.
//! * [`join`] pushes the second closure as a *stack job* (a type-erased pointer into
//!   the caller's frame), runs the first closure inline, then either pops the second
//!   back (nobody stole it) or **steals other work** while waiting for the thief to
//!   finish — callers are never idle while their children run elsewhere.
//! * Workers pop their own deque LIFO (locality) and steal from the injector and from
//!   other workers FIFO (oldest job first, like rayon's breadth-first steals).
//! * [`scope`] spawns heap jobs whose lifetime is erased to the scope's; the scope
//!   blocks (stealing, never idling) until its pending-job counter drains, which is
//!   what makes the lifetime erasure sound.
//!
//! # Determinism contract
//!
//! Work stealing randomizes *where* a job runs, never *what* it computes or how results
//! are combined: the parallel-iterator layer splits an index range recursively via
//! [`join`] and writes each item's result into its input slot, so **results are always
//! reduced in input-index order regardless of which worker ran them** — bit-identical
//! at any thread count, which is exactly the determinism contract the UERL engine
//! relies on. Panics from any branch are captured and re-thrown on the calling thread
//! with `resume_unwind` after every sibling finished (so no job ever outlives the frame
//! it points into).
//!
//! # Thread-count resolution
//!
//! Innermost [`ThreadPool::install`] override, then the `RAYON_NUM_THREADS` environment
//! variable, then `std::thread::available_parallelism`; the ambient (non-override)
//! resolution is performed once and cached, like the real rayon's global pool size.
//! Overrides are **carried with submitted jobs** — each job captures the override in
//! effect where it was created and reinstalls it while it executes — so nested parallel
//! calls inside stolen work still honor the `install` that wrapped them, instead of
//! seeing the thief's (unrelated) thread-local state. An override of 1 short-circuits
//! every primitive to the serial path.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, Once, OnceLock};
use std::time::Duration;

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`] or reinstalled while a
    /// job created under an override executes; 0 = no override.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };

    /// Index of this thread's deque in the registry; `usize::MAX` for non-workers.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The ambient thread count (`RAYON_NUM_THREADS`, else available parallelism), resolved
/// once: the real rayon also fixes its global pool size at first use, and re-reading the
/// environment on every parallel call costs a lock + string parse on the hot path.
static AMBIENT_THREADS: OnceLock<usize> = OnceLock::new();

fn ambient_num_threads() -> usize {
    *AMBIENT_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn current_override() -> usize {
    THREAD_OVERRIDE.with(Cell::get)
}

fn current_worker_index() -> Option<usize> {
    let idx = WORKER_INDEX.with(Cell::get);
    (idx != usize::MAX).then_some(idx)
}

/// The number of threads parallel calls on this thread will currently fan out to.
pub fn current_num_threads() -> usize {
    let over = current_override();
    if over > 0 {
        return over;
    }
    ambient_num_threads()
}

// --------------------------------------------------------------------------------------
// Jobs
// --------------------------------------------------------------------------------------

/// A type-erased pointer to a job. For [`join`] the pointee is a [`StackJob`] in the
/// waiting caller's frame; for [`Scope::spawn`] it is a leaked [`HeapJob`] reclaimed by
/// its executor. Either way the pointee outlives execution: stack-job creators block on
/// the job's latch and scopes block on their pending counter before the frame exits.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// Safety: `JobRef` is only ever created for pointees designed for cross-thread
// execution (results handed back through latches/atomics), and the creator keeps the
// pointee alive until the executor signals completion.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job. Job implementations catch user panics internally (they are
    /// re-thrown at the fork point), so this never unwinds into queue machinery.
    unsafe fn execute(self) {
        (self.execute)(self.data)
    }
}

/// Completion flag for a [`StackJob`], set by the executor *after* the result is
/// stored and probed by the waiting creator. `SeqCst` on both sides: the monitor's
/// no-sleeper fast path relies on a single total order over "publish event, then load
/// sleeper count" (setter) vs "announce sleep, then re-probe" (waiter).
struct Latch {
    done: std::sync::atomic::AtomicBool,
}

impl Latch {
    fn new() -> Self {
        Self {
            done: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    fn set(&self, registry: &Registry) {
        self.done.store(true, Ordering::SeqCst);
        registry.monitor.bump();
    }
}

/// A [`join`] branch living in the caller's stack frame, executed exactly once by
/// whichever thread gets to it first (the caller popping it back, or a thief).
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: Latch,
    /// The `install` override in effect at the fork point, reinstalled for the job's
    /// execution wherever it runs (override propagation to stolen work).
    override_threads: usize,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F, override_threads: usize) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
            override_threads,
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: Self::execute_erased,
        }
    }

    /// # Safety
    /// `ptr` must come from [`Self::as_job_ref`] on a live `StackJob` that has not been
    /// executed yet, and no other thread may execute the same job concurrently (queue
    /// removal is the exclusivity token).
    unsafe fn execute_erased(ptr: *const ()) {
        let job = &*(ptr as *const Self);
        let func = (*job.func.get()).take().expect("stack job executed twice");
        let prev = THREAD_OVERRIDE.with(|c| c.replace(job.override_threads));
        let result = catch_unwind(AssertUnwindSafe(func));
        THREAD_OVERRIDE.with(|c| c.set(prev));
        *job.result.get() = Some(result);
        // The latch is the last access: once set, the creator may read the result and
        // pop the frame.
        job.latch.set(global_registry());
    }

    /// Consume the job after its latch is set (or after executing it inline).
    fn into_result(self) -> std::thread::Result<R> {
        self.result
            .into_inner()
            .expect("stack job result missing after completion")
    }
}

/// A [`Scope::spawn`] task: a lifetime-erased boxed closure. The closure itself carries
/// the scope pointer, override reinstall, panic capture and pending-counter decrement,
/// so executing it is just "call it".
struct HeapJob {
    task: Option<Box<dyn FnOnce() + Send>>,
}

impl HeapJob {
    /// # Safety
    /// `ptr` must come from `Box::into_raw(Box<HeapJob>)` and be executed exactly once.
    unsafe fn execute_erased(ptr: *const ()) {
        let mut job = Box::from_raw(ptr as *mut HeapJob);
        let task = job.task.take().expect("heap job executed twice");
        task();
    }
}

// --------------------------------------------------------------------------------------
// Registry: injector + per-worker deques + sleep/wake monitor
// --------------------------------------------------------------------------------------

/// Wake-up channel shared by all queues and latches.
///
/// Sleeping is a two-phase announce-then-recheck protocol. A would-be sleeper first
/// calls [`Monitor::start_sleep`] (registering in `sleepers` and reading the
/// generation), then **re-checks its wake condition** (queues, latch, counter), and
/// only then parks with [`Monitor::sleep`] — or backs out with
/// [`Monitor::cancel_sleep`]. Publishers call [`Monitor::bump`] *after* publishing
/// their event; the `SeqCst` pairing of the publish + `sleepers` load against the
/// sleeper's registration + re-check makes the protocol lossless: either the publisher
/// sees the registered sleeper and bumps the generation (waking it), or the sleeper's
/// re-check sees the published event. The payoff is the hot-path fast-out in `bump` —
/// with nobody asleep (the common case on a busy pool), a push or latch completion
/// touches one atomic load instead of a global mutex + `notify_all` thundering herd.
/// The wait timeout is belt-and-braces only.
struct Monitor {
    generation: Mutex<u64>,
    cv: Condvar,
    sleepers: AtomicUsize,
}

impl Monitor {
    fn new() -> Self {
        Self {
            generation: Mutex::new(0),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    /// Announce sleep intent and snapshot the generation. Pair with [`Monitor::sleep`]
    /// or [`Monitor::cancel_sleep`]; re-check the wake condition in between.
    fn start_sleep(&self) -> u64 {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        *self.generation.lock().expect("monitor poisoned")
    }

    /// Back out of an announced sleep (the re-check found work or completion).
    fn cancel_sleep(&self) {
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Park until the generation moves past the [`Monitor::start_sleep`] snapshot (or
    /// the safety timeout fires).
    fn sleep(&self, seen: u64) {
        {
            let g = self.generation.lock().expect("monitor poisoned");
            if *g == seen {
                let _ = self
                    .cv
                    .wait_timeout(g, Duration::from_millis(25))
                    .expect("monitor poisoned");
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake sleepers after publishing an event (job push, latch set, counter drain).
    /// Callers must publish *before* bumping.
    fn bump(&self) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut g = self.generation.lock().expect("monitor poisoned");
        *g = g.wrapping_add(1);
        self.cv.notify_all();
    }
}

/// Where a job was pushed, so a `join` caller can try to take its own job back.
#[derive(Clone, Copy)]
enum PushedTo {
    Worker(usize),
    Injector,
}

/// The global pool state: the shared injector, one deque per worker, and the monitor.
struct Registry {
    injector: Mutex<VecDeque<JobRef>>,
    worker_queues: Vec<Mutex<VecDeque<JobRef>>>,
    monitor: Monitor,
    /// Worker threads ever spawned — must equal `worker_queues.len()` forever after
    /// initialization (the pool-reuse guarantee; exposed via
    /// [`pool_worker_threads_spawned`]).
    spawned: AtomicUsize,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static WORKERS_STARTED: Once = Once::new();

// --------------------------------------------------------------------------------------
// Pool statistics
// --------------------------------------------------------------------------------------
//
// Scheduler-visible counters for the observability layer. This crate mirrors the
// external `rayon` API and therefore cannot depend on workspace crates, so the stats
// are plain module-level atomics behind a `pub` accessor; `uerl-serve` polls them into
// wall-clock gauges at flush time. All updates are `Relaxed` single-word RMWs on the
// already-locked queue paths — the snapshot is advisory (scheduling is inherently
// racy), never part of any determinism contract.

/// Jobs handed out by [`Registry::find_work`] (own deque, injector or steals). Jobs a
/// `join` caller takes back and runs inline never enter this count.
static STAT_JOBS_EXECUTED: AtomicUsize = AtomicUsize::new(0);
/// Subset of [`STAT_JOBS_EXECUTED`] that came from *another* worker's deque.
static STAT_STEALS: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of the injector queue depth, sampled after each external push.
static STAT_INJECTOR_DEPTH_HWM: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of any single worker deque depth, sampled after each worker push.
static STAT_DEQUE_DEPTH_HWM: AtomicUsize = AtomicUsize::new(0);

/// A point-in-time snapshot of the pool's scheduler counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs dispensed by the queue machinery (excludes inline take-backs).
    pub jobs_executed: usize,
    /// Jobs stolen from another worker's deque.
    pub steals: usize,
    /// Deepest the shared injector queue has ever been.
    pub injector_depth_hwm: usize,
    /// Deepest any single worker deque has ever been.
    pub deque_depth_hwm: usize,
}

/// Snapshot the scheduler counters (racy-but-monotonic; see the stats module notes).
pub fn pool_stats() -> PoolStats {
    PoolStats {
        jobs_executed: STAT_JOBS_EXECUTED.load(Ordering::Relaxed),
        steals: STAT_STEALS.load(Ordering::Relaxed),
        injector_depth_hwm: STAT_INJECTOR_DEPTH_HWM.load(Ordering::Relaxed),
        deque_depth_hwm: STAT_DEQUE_DEPTH_HWM.load(Ordering::Relaxed),
    }
}

/// Zero the scheduler counters (benchmark legs isolate their own windows with this).
pub fn reset_pool_stats() {
    STAT_JOBS_EXECUTED.store(0, Ordering::Relaxed);
    STAT_STEALS.store(0, Ordering::Relaxed);
    STAT_INJECTOR_DEPTH_HWM.store(0, Ordering::Relaxed);
    STAT_DEQUE_DEPTH_HWM.store(0, Ordering::Relaxed);
}

fn stat_raise_hwm(hwm: &AtomicUsize, depth: usize) {
    hwm.fetch_max(depth, Ordering::Relaxed);
}

/// The lazily-initialized global registry. The first call builds the queues and spawns
/// the workers; every later call is a cheap read.
fn global_registry() -> &'static Registry {
    let registry = REGISTRY.get_or_init(|| {
        let n_workers = ambient_num_threads().saturating_sub(1);
        Registry {
            injector: Mutex::new(VecDeque::new()),
            worker_queues: (0..n_workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            monitor: Monitor::new(),
            spawned: AtomicUsize::new(0),
        }
    });
    WORKERS_STARTED.call_once(|| {
        for index in 0..registry.worker_queues.len() {
            registry.spawned.fetch_add(1, Ordering::SeqCst);
            std::thread::Builder::new()
                .name(format!("uerl-rayon-{index}"))
                .spawn(move || worker_loop(global_registry(), index))
                .expect("spawn pool worker");
        }
    });
    registry
}

/// Pool workers live for the whole process (daemon threads), sleeping on the monitor
/// when no work is findable (announce, re-scan, park — see [`Monitor`]).
fn worker_loop(registry: &'static Registry, index: usize) {
    WORKER_INDEX.with(|c| c.set(index));
    loop {
        if let Some(job) = registry.find_work() {
            unsafe { job.execute() };
            continue;
        }
        let gen = registry.monitor.start_sleep();
        match registry.find_work() {
            Some(job) => {
                registry.monitor.cancel_sleep();
                unsafe { job.execute() };
            }
            None => registry.monitor.sleep(gen),
        }
    }
}

impl Registry {
    /// Push a job: onto the calling worker's own deque, or the injector for external
    /// threads. Returns where, so `join` can attempt to take it back.
    fn push(&self, job: JobRef) -> PushedTo {
        let pushed = match current_worker_index() {
            Some(i) if i < self.worker_queues.len() => {
                let mut q = self.worker_queues[i].lock().expect("worker queue poisoned");
                q.push_back(job);
                stat_raise_hwm(&STAT_DEQUE_DEPTH_HWM, q.len());
                PushedTo::Worker(i)
            }
            _ => {
                let mut q = self.injector.lock().expect("injector poisoned");
                q.push_back(job);
                stat_raise_hwm(&STAT_INJECTOR_DEPTH_HWM, q.len());
                PushedTo::Injector
            }
        };
        self.monitor.bump();
        pushed
    }

    /// Try to remove the exact job (pointer identity) from the queue it was pushed to.
    /// Success means nobody stole it and the caller now owns its execution.
    fn take_back(&self, pushed: PushedTo, job: JobRef) -> bool {
        let queue = match pushed {
            PushedTo::Worker(i) => &self.worker_queues[i],
            PushedTo::Injector => &self.injector,
        };
        let mut q = queue.lock().expect("queue poisoned");
        match q.iter().rposition(|j| std::ptr::eq(j.data, job.data)) {
            Some(pos) => {
                q.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Find one job: own deque LIFO first (locality), then the injector, then steal
    /// from other workers FIFO.
    fn find_work(&self) -> Option<JobRef> {
        let me = current_worker_index();
        if let Some(i) = me {
            if let Some(job) = self.worker_queues[i]
                .lock()
                .expect("worker queue poisoned")
                .pop_back()
            {
                STAT_JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            STAT_JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        for (i, queue) in self.worker_queues.iter().enumerate() {
            if Some(i) == me {
                continue;
            }
            if let Some(job) = queue.lock().expect("worker queue poisoned").pop_front() {
                STAT_JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
                STAT_STEALS.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Work-stealing wait: execute other jobs until `done()` holds, sleeping on the
    /// monitor only when no work is findable (announce, re-check, park — see
    /// [`Monitor`]). This is what keeps every thread busy while its fork-join children
    /// run elsewhere — and what makes blocking deadlock free (a waiter always advances
    /// someone's pending work if there is any).
    fn steal_until(&self, done: impl Fn() -> bool) {
        loop {
            if done() {
                return;
            }
            if let Some(job) = self.find_work() {
                unsafe { job.execute() };
                continue;
            }
            let gen = self.monitor.start_sleep();
            if done() {
                self.monitor.cancel_sleep();
                return;
            }
            if let Some(job) = self.find_work() {
                self.monitor.cancel_sleep();
                unsafe { job.execute() };
                continue;
            }
            self.monitor.sleep(gen);
        }
    }
}

/// Number of worker threads the global pool was sized to (0 until first use on a
/// single-core ambient, where every primitive short-circuits to the serial path).
pub fn pool_size() -> usize {
    REGISTRY.get().map_or(0, |r| r.worker_queues.len())
}

/// Total pool worker threads ever spawned over the process lifetime. After the first
/// parallel call this equals [`pool_size`] and **never grows again** — the regression
/// hook for the "parallel calls reuse the pool" guarantee.
pub fn pool_worker_threads_spawned() -> usize {
    REGISTRY
        .get()
        .map_or(0, |r| r.spawned.load(Ordering::SeqCst))
}

// --------------------------------------------------------------------------------------
// join
// --------------------------------------------------------------------------------------

/// Run both closures, potentially in parallel, and return both results. Mirrors
/// `rayon::join`: `oper_b` is made stealable while the calling thread runs `oper_a`
/// inline, then the caller either runs `oper_b` itself (nobody stole it) or steals
/// other work until the thief finishes. Panics from either closure are re-thrown on the
/// calling thread — `oper_a`'s first if both panicked — and only after both branches
/// have settled, so no branch ever outlives the frame.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (oper_a(), oper_b());
    }
    let registry = global_registry();
    if registry.worker_queues.is_empty() {
        // Single-core ambient: the pool has no workers, so queueing would only add
        // overhead with nobody to steal.
        return (oper_a(), oper_b());
    }

    let job_b = StackJob::new(oper_b, current_override());
    let job_ref = job_b.as_job_ref();
    let pushed = registry.push(job_ref);

    // Run `a` inline, capturing a panic so `b` is still driven to completion first
    // (its StackJob points into this frame).
    let result_a = catch_unwind(AssertUnwindSafe(oper_a));

    if registry.take_back(pushed, job_ref) {
        // Nobody stole `b`: run it inline (same path as a thief would take, including
        // the override reinstall).
        unsafe { job_ref.execute() };
    } else {
        registry.steal_until(|| job_b.latch.probe());
    }

    let result_b = job_b.into_result();
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(panic_a), _) => resume_unwind(panic_a),
        (Ok(_), Err(panic_b)) => resume_unwind(panic_b),
    }
}

// --------------------------------------------------------------------------------------
// scope
// --------------------------------------------------------------------------------------

/// A fork-join scope handed to the [`scope`] closure; [`Scope::spawn`] tasks may borrow
/// anything outliving the `scope` call, which blocks until every task finished.
pub struct Scope<'scope> {
    registry: &'static Registry,
    /// Tasks spawned but not yet finished. The scope exit blocks (stealing) until this
    /// drains to zero, which is what makes the `'scope` lifetime erasure sound.
    pending: AtomicUsize,
    /// First panic raised by any spawned task, re-thrown at scope exit.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant over `'scope` (mirrors rayon): spawned tasks may borrow from it.
    marker: PhantomData<&'scope mut &'scope ()>,
}

/// Raw scope pointer smuggled into lifetime-erased tasks.
struct ScopePtr(*const ());

// Safety: the pointee is a `Scope` whose shared state (atomics, mutexes) is
// thread-safe, and it outlives every task (the scope exit waits on `pending`).
unsafe impl Send for ScopePtr {}

impl ScopePtr {
    /// Accessor (rather than field access) so closures capture the whole `Send`
    /// wrapper under edition-2021 disjoint capture, not the bare raw pointer.
    fn get(&self) -> *const () {
        self.0
    }
}

/// Create a fork-join scope: `op` may call [`Scope::spawn`] with closures borrowing
/// data that outlives the `scope` call; `scope` returns only after every spawned task
/// (including transitively spawned ones) finished. The first task panic — or `op`'s own
/// — is re-thrown here.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        registry: global_registry(),
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&s)));
    // Drain every spawned task before the scope frame can go away, stealing work
    // (often the scope's own tasks) instead of idling.
    // SeqCst load: pairs with the finishing task's decrement + the monitor's
    // no-sleeper fast path (see `Monitor`).
    s.registry
        .steal_until(|| s.pending.load(Ordering::SeqCst) == 0);
    let task_panic = s.panic.lock().expect("scope panic slot poisoned").take();
    match result {
        Err(op_panic) => resume_unwind(op_panic),
        Ok(value) => match task_panic {
            Some(panic) => resume_unwind(panic),
            None => value,
        },
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn a task into the scope. The task may borrow anything `'scope` covers and
    /// may spawn further tasks onto the same scope. Under a serial override (or a
    /// worker-less pool) the task runs inline, which keeps spawn usable — though
    /// unordered by contract — on any thread count.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let override_now = current_override();
        if current_num_threads() <= 1 || self.registry.worker_queues.is_empty() {
            run_spawned(self, f, override_now);
            return;
        }
        let scope_ptr = ScopePtr(self as *const Scope<'scope> as *const ());
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // Safety: the scope outlives the task (scope exit waits on `pending`).
            let scope = unsafe { &*(scope_ptr.get() as *const Scope<'scope>) };
            run_spawned(scope, f, override_now);
        });
        // Safety: erase `'scope` to store the task in the 'static queues; the scope
        // exit's `steal_until` on `pending` guarantees the closure (and everything it
        // borrows) is gone before `'scope` ends.
        let task: Box<dyn FnOnce() + Send + 'static> =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, _>(task) };
        let data = Box::into_raw(Box::new(HeapJob { task: Some(task) })) as *const ();
        self.registry.push(JobRef {
            data,
            execute: HeapJob::execute_erased,
        });
    }

    fn record_panic(&self, panic: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("scope panic slot poisoned");
        slot.get_or_insert(panic);
    }
}

/// Run one spawned task: reinstall the spawn-point override, capture panics into the
/// scope, and decrement the pending counter **as the very last scope access** (after
/// the decrement the scope frame may legally disappear).
fn run_spawned<'scope, F>(scope: &Scope<'scope>, f: F, override_threads: usize)
where
    F: FnOnce(&Scope<'scope>),
{
    let registry = scope.registry;
    let prev = THREAD_OVERRIDE.with(|c| c.replace(override_threads));
    let result = catch_unwind(AssertUnwindSafe(|| f(scope)));
    THREAD_OVERRIDE.with(|c| c.set(prev));
    if let Err(panic) = result {
        scope.record_panic(panic);
    }
    if scope.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
        registry.monitor.bump();
    }
}

// --------------------------------------------------------------------------------------
// ThreadPool: scoped overrides
// --------------------------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder` (only `num_threads` is supported).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never actually produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (ambient) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of threads (0 = ambient default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool handle. Infallible in this implementation: `ThreadPool` is a
    /// scoped parallelism-degree override executed on the shared global pool, not a
    /// separate set of OS threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override, mirroring `rayon::ThreadPool`. Parallel calls under
/// [`ThreadPool::install`] split to this degree (1 = serial) but still execute on the
/// shared global worker pool; the override travels with every job the wrapped code
/// submits, so stolen work honors it too.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count installed for every parallel call `f`
    /// makes — directly, nested, or from work stolen onto other pool threads (the
    /// override is captured into each submitted job, not left behind in a caller-only
    /// thread-local).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads));
        let guard = RestoreOverride(prev);
        let result = f();
        drop(guard);
        result
    }

    /// The configured thread count (0 = ambient default).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

struct RestoreOverride(usize);

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        let prev = self.0;
        THREAD_OVERRIDE.with(|c| c.set(prev));
    }
}

// --------------------------------------------------------------------------------------
// Indexed execution: the substrate of the parallel-iterator layer
// --------------------------------------------------------------------------------------

/// Each parallel call over `len` items splits into roughly `threads * OVERSPLIT`
/// leaves, giving the stealing slack to balance uneven item costs without paying a
/// queue round-trip per item.
const OVERSPLIT: usize = 4;

fn grain_for(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.saturating_mul(OVERSPLIT).max(1))
        .max(1)
}

/// Run `f` over `0..len` on the work-stealing pool via recursive [`join`] splitting.
/// Each item's result is written into its input-index slot, so the output is in input
/// order — bit-identical at any thread count.
pub fn execute_indexed<U: Send>(len: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<Option<U>> = (0..len).map(|_| None).collect();
    fill_indexed(0, &mut out, grain_for(len, threads), &f);
    out.into_iter()
        .map(|slot| slot.expect("parallel leaf filled every slot"))
        .collect()
}

fn fill_indexed<U: Send>(
    start: usize,
    out: &mut [Option<U>],
    grain: usize,
    f: &(impl Fn(usize) -> U + Sync),
) {
    if out.len() <= grain {
        for (offset, slot) in out.iter_mut().enumerate() {
            *slot = Some(f(start + offset));
        }
        return;
    }
    let mid = out.len() / 2;
    let (left, right) = out.split_at_mut(mid);
    join(
        || fill_indexed(start, left, grain, f),
        || fill_indexed(start + mid, right, grain, f),
    );
}

/// Like [`execute_indexed`] but consuming owned items, preserving order.
pub fn execute_owned<I: Send, U: Send>(items: Vec<I>, f: impl Fn(I) -> U + Sync) -> Vec<U> {
    let len = items.len();
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut input: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<U>> = (0..len).map(|_| None).collect();
    fill_owned(&mut input, &mut out, grain_for(len, threads), &f);
    out.into_iter()
        .map(|slot| slot.expect("parallel leaf filled every slot"))
        .collect()
}

fn fill_owned<I: Send, U: Send>(
    input: &mut [Option<I>],
    out: &mut [Option<U>],
    grain: usize,
    f: &(impl Fn(I) -> U + Sync),
) {
    if input.len() <= grain {
        for (item, slot) in input.iter_mut().zip(out.iter_mut()) {
            *slot = Some(f(item.take().expect("owned item consumed twice")));
        }
        return;
    }
    let mid = input.len() / 2;
    let (in_left, in_right) = input.split_at_mut(mid);
    let (out_left, out_right) = out.split_at_mut(mid);
    join(
        || fill_owned(in_left, out_left, grain, f),
        || fill_owned(in_right, out_right, grain, f),
    );
}

pub mod iter {
    //! The parallel-iterator subset: `par_iter` / `into_par_iter` → `map` →
    //! `collect` / `for_each` / `sum`.

    use super::{execute_indexed, execute_owned};

    /// Borrowing parallel iteration (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed item type.
        type Item: Sync + 'a;
        /// The concrete parallel iterator.
        type Iter;
        /// Borrowing parallel iterator over the collection.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        type Iter = ParSlice<'a, T>;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        type Iter = ParSlice<'a, T>;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }

    /// Consuming parallel iteration (`into_par_iter`).
    pub trait IntoParallelIterator {
        /// The owned item type.
        type Item: Send;
        /// The concrete parallel iterator.
        type Iter;
        /// Consuming parallel iterator over the collection.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParVec<T>;
        fn into_par_iter(self) -> ParVec<T> {
            ParVec { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// Parallel iterator over a borrowed slice.
    pub struct ParSlice<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParSlice<'a, T> {
        /// Map each borrowed item.
        pub fn map<U: Send, F: Fn(&'a T) -> U + Sync>(self, f: F) -> MapSlice<'a, T, F> {
            MapSlice {
                slice: self.slice,
                f,
            }
        }
    }

    /// Mapped parallel slice iterator.
    pub struct MapSlice<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> MapSlice<'a, T, F> {
        /// Execute in parallel and collect in input order.
        pub fn collect<C, U>(self) -> C
        where
            U: Send,
            F: Fn(&'a T) -> U + Sync,
            C: FromParallelIterator<U>,
        {
            let slice = self.slice;
            let f = self.f;
            C::from_vec(execute_indexed(slice.len(), |i| f(&slice[i])))
        }

        /// Execute in parallel for side effects.
        pub fn for_each<U>(self)
        where
            U: Send,
            F: Fn(&'a T) -> U + Sync,
        {
            let _: Vec<U> = {
                let slice = self.slice;
                let f = self.f;
                execute_indexed(slice.len(), |i| f(&slice[i]))
            };
        }

        /// Execute in parallel and sum the results.
        pub fn sum<U>(self) -> U
        where
            U: Send + std::iter::Sum<U>,
            F: Fn(&'a T) -> U + Sync,
        {
            let slice = self.slice;
            let f = self.f;
            execute_indexed(slice.len(), |i| f(&slice[i]))
                .into_iter()
                .sum()
        }
    }

    /// Parallel iterator over an owned vector.
    pub struct ParVec<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParVec<T> {
        /// Map each owned item.
        pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> MapVec<T, F> {
            MapVec {
                items: self.items,
                f,
            }
        }
    }

    /// Mapped parallel owned-vector iterator.
    pub struct MapVec<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send, F> MapVec<T, F> {
        /// Execute in parallel and collect in input order.
        pub fn collect<C, U>(self) -> C
        where
            U: Send,
            F: Fn(T) -> U + Sync,
            C: FromParallelIterator<U>,
        {
            C::from_vec(execute_owned(self.items, self.f))
        }
    }

    /// Parallel iterator over a `usize` range.
    pub struct ParRange {
        range: std::ops::Range<usize>,
    }

    impl ParRange {
        /// Map each index.
        pub fn map<U: Send, F: Fn(usize) -> U + Sync>(self, f: F) -> MapRange<F> {
            MapRange {
                range: self.range,
                f,
            }
        }
    }

    /// Mapped parallel range iterator.
    pub struct MapRange<F> {
        range: std::ops::Range<usize>,
        f: F,
    }

    impl<F> MapRange<F> {
        /// Execute in parallel and collect in input order.
        pub fn collect<C, U>(self) -> C
        where
            U: Send,
            F: Fn(usize) -> U + Sync,
            C: FromParallelIterator<U>,
        {
            let start = self.range.start;
            let f = self.f;
            C::from_vec(execute_indexed(self.range.end.saturating_sub(start), |i| {
                f(start + i)
            }))
        }
    }

    /// Collections constructible from an ordered parallel result.
    pub trait FromParallelIterator<U> {
        /// Build the collection from the in-order results.
        fn from_vec(v: Vec<U>) -> Self;
    }

    impl<U> FromParallelIterator<U> for Vec<U> {
        fn from_vec(v: Vec<U>) -> Self {
            v
        }
    }
}

pub mod prelude {
    //! Glob-importable parallel-iterator traits, mirroring `rayon::prelude`.
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn indexed_execution_preserves_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_matches_serial() {
        let data: Vec<u64> = (0..1000).collect();
        let par: Vec<u64> = data.par_iter().map(|&x| x * x).collect();
        let ser: Vec<u64> = data.iter().map(|&x| x * x).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn owned_execution_preserves_order() {
        let data: Vec<String> = (0..50).map(|i| format!("item{i}")).collect();
        let par: Vec<usize> = data.clone().into_par_iter().map(|s| s.len()).collect();
        let ser: Vec<usize> = data.iter().map(|s| s.len()).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn install_overrides_thread_count_and_restores() {
        let ambient = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 1);
        assert_eq!(current_num_threads(), ambient);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let work = |i: usize| (i as f64).sqrt() * 3.0 + i as f64;
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let a: Vec<f64> = one.install(|| (0..500).into_par_iter().map(work).collect());
        let b: Vec<f64> = four.install(|| (0..500).into_par_iter().map(work).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn install_override_is_carried_into_submitted_jobs() {
        // Regression test for the override-propagation contract: the override must be
        // captured into every job at its creation point, so parallel work — wherever it
        // is stolen to — observes the `install` that wrapped it, not the executing
        // thread's own (absent) override. Under the old thread-local-only scheme a
        // stolen job saw the worker's default instead.
        let pool = ThreadPoolBuilder::new().num_threads(6).build().unwrap();
        let counts: Vec<usize> = pool.install(|| {
            (0..64)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            counts.iter().all(|&c| c == 6),
            "jobs must observe the installed override, saw {counts:?}"
        );
        // Nested parallel calls inside jobs inherit the same override too.
        let nested: Vec<Vec<usize>> = pool.install(|| {
            (0..8)
                .into_par_iter()
                .map(|_| {
                    (0..8)
                        .into_par_iter()
                        .map(|_| current_num_threads())
                        .collect()
                })
                .collect()
        });
        assert!(
            nested.iter().flatten().all(|&c| c == 6),
            "nested jobs must inherit the override, saw {nested:?}"
        );
    }

    #[test]
    fn ambient_thread_count_is_cached_after_first_use() {
        // The first call pins the ambient resolution in the `OnceLock`; every later
        // call must serve the cached value without re-reading the environment
        // (`install` overrides remain the way to change the count). No env mutation
        // here: setenv is unsafe under the multi-threaded test harness.
        let first = current_num_threads();
        assert!(first >= 1);
        assert_eq!(super::AMBIENT_THREADS.get().copied(), Some(first));
        assert_eq!(current_num_threads(), first);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..16)
                .into_par_iter()
                .map(|i| if i == 7 { panic!("boom") } else { i })
                .collect();
        });
        assert!(result.is_err());
    }

    #[test]
    fn sum_matches_serial() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "b".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "b");
    }

    #[test]
    fn join_recursion_computes_correctly() {
        fn par_sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 8 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (l, r) = join(
                || par_sum(range.start..mid),
                move || par_sum(mid..range.end),
            );
            l + r
        }
        assert_eq!(par_sum(0..1000), 499_500);
    }

    #[test]
    fn join_propagates_panics_from_either_branch() {
        let a_panics = std::panic::catch_unwind(|| join(|| panic!("left"), || 1));
        assert!(a_panics.is_err());
        let b_panics = std::panic::catch_unwind(|| join(|| 1, || panic!("right")));
        assert!(b_panics.is_err());
        let both_panic = std::panic::catch_unwind(|| {
            join(|| panic!("left"), || panic!("right"));
        });
        assert!(both_panic.is_err());
        // The pool survives panics: a later call still works.
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn scope_tasks_can_spawn_more_tasks() {
        // Nested-scope stress: tasks spawn onto the same scope and onto inner scopes.
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|_| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8 * (1 + 1 + 4));
    }

    #[test]
    fn scope_propagates_task_panics_after_draining() {
        let drained = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let drained = &drained;
            scope(|s| {
                for i in 0..16 {
                    s.spawn(move |_| {
                        if i == 5 {
                            panic!("task panic");
                        }
                        drained.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // Every non-panicking task still ran before the panic was re-thrown.
        assert_eq!(drained.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn pool_stats_are_consistent_after_fanout() {
        // No reset here: other tests run concurrently in this binary, so the counters
        // are shared. Assert only monotone/consistency properties of the snapshot.
        let before = pool_stats();
        let _: Vec<usize> = (0..256).into_par_iter().map(|i| i + 1).collect();
        let after = pool_stats();
        assert!(after.jobs_executed >= before.jobs_executed);
        assert!(after.steals <= after.jobs_executed);
        if pool_size() > 0 {
            // With workers present a 256-item fan-out pushes at least one stealable
            // job (even if the caller later took every one of them back inline).
            assert!(
                after.injector_depth_hwm > 0 || after.deque_depth_hwm > 0,
                "fan-out on a populated pool must push through the queues"
            );
        }
    }

    #[test]
    fn pool_is_reused_across_sequential_parallel_calls() {
        // Prime the pool, then hammer it with nested fan-outs: the worker-thread spawn
        // counter must not move — parallel calls after pool init spawn zero new OS
        // threads, and the pool never exceeds the ambient size.
        let _: Vec<usize> = (0..64).into_par_iter().map(|i| i).collect();
        let spawned_after_init = pool_worker_threads_spawned();
        assert_eq!(spawned_after_init, pool_size());
        assert!(spawned_after_init <= current_num_threads());
        for round in 0..50 {
            let out: Vec<usize> = (0..32)
                .into_par_iter()
                .map(|i| {
                    let inner: Vec<usize> = (0..4).into_par_iter().map(|j| i + j).collect();
                    inner.into_iter().sum::<usize>() + round
                })
                .collect();
            assert_eq!(out.len(), 32);
            let (a, b) = join(|| 1, || 2);
            assert_eq!(a + b, 3);
        }
        assert_eq!(
            pool_worker_threads_spawned(),
            spawned_after_init,
            "sequential parallel calls must reuse the persistent pool"
        );
    }
}
