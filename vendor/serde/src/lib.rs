//! Offline vendored `serde` facade.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations compile without a registry. No code
//! in this workspace serialises through serde yet (report output is hand-formatted
//! text/JSON); when a registry is reachable, replacing this crate with the real serde
//! is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};
