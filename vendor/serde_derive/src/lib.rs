//! Offline vendored no-op derive macros for `Serialize` / `Deserialize`.
//!
//! The workspace's types carry serde derives so that swapping in the real `serde`
//! crate (once a registry is reachable) is a manifest-only change. Until then no code
//! path serialises anything, so the derives expand to nothing; the `#[serde(...)]`
//! helper attribute is accepted and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
